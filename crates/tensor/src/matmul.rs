//! Matrix-multiplication kernels: naive, cache-blocked, multi-threaded, and
//! lane-parallel (see [`crate::simd`]).
//!
//! All variants compute `C = A · B` (or a transposed flavour) and are
//! exact-equivalent; the blocked/threaded/lane versions exist purely for
//! throughput. The kernels bench (`hgnas-bench`, `BENCH_kernels.json`)
//! tracks scalar-vs-lane wall clock per shape; the elementwise and
//! activation kernels that surround these matmuls on the tape live in
//! [`crate::simd`] directly and are tracked by `BENCH_ops.json`.
//!
//! # Dispatch decision tree
//!
//! Every entry point walks the same gates, so tiny matmuls never pay
//! thread-spawn or lane-dispatch overhead:
//!
//! 1. **Threads** ([`Tensor::matmul`], [`matmul_bt`], [`matmul_at`]): use
//!    the caller's kernel budget ([`crate::threads::kernel_threads`]) only
//!    when `budget > 1` **and** the output has at least
//!    [`PARALLEL_MIN_ROWS`] rows **and** the total multiply-add count is at
//!    least [`PARALLEL_MIN_WORK`]; otherwise run single-threaded. Scoped
//!    threads cost ~100 µs to spawn+join, so row count alone is the wrong
//!    gate for skinny shapes.
//! 2. **Blocking**: each thread (or the single-threaded fall-through) runs
//!    the cache-blocked kernel ([`BLOCK`]-edge tiles).
//! 3. **Lanes**: the innermost contiguous loop dispatches through
//!    [`crate::simd`], which itself falls back to scalar below one lane
//!    width ([`crate::simd::LANES`]) or when AVX2 is unavailable. The
//!    same gate serves the non-matmul tape ops: elementwise
//!    add/sub/mul/scale and the relu/leaky-relu forwards and gradients
//!    dispatch per row (or per flat buffer) through the identical
//!    lane/remainder schedule, so a tensor narrower than one lane runs
//!    the scalar leg with zero dispatch overhead.
//!
//! Every gate is value-neutral: threading partitions output rows without
//! reordering any row's accumulation, and the lane kernels are bit-identical
//! to their scalar fallbacks by construction. The only numeric decision is
//! baked into the kernel itself: [`matmul_bt`] contracts with the fixed
//! multi-accumulator schedule of [`crate::simd::dot`] on *every* path.
//!
//! # Zero-skip removal (IEEE semantics)
//!
//! Earlier revisions skipped `A` elements equal to `0.0` in the axpy
//! kernels. The branch blocked vectorisation and made latency data-dependent
//! (a denial-of-determinism for perf baselines), so it is gone; as a
//! consequence `0·x` now *participates*: a zero row of `A` against a `NaN`/
//! `∞` in `B` produces `NaN` (IEEE), where the skip used to hide it. The
//! `zero_times_special_values_propagate` test pins the new contract.

use crate::simd;
use crate::Tensor;

/// Cache-block edge length used by [`matmul_blocked`]. 64 f32 = 256 B per
/// panel row, sized so three panels fit comfortably in L1.
pub const BLOCK: usize = 64;

/// Rows-per-thread threshold below which the threaded kernels fall back to
/// the single-threaded blocked kernel.
pub const PARALLEL_MIN_ROWS: usize = 128;

/// Minimum total work (`m·k·n` multiply-adds) for the threaded kernels to
/// spawn threads. Scoped threads cost ~100 µs to spawn+join; a skinny
/// matmul over this many rows but few columns finishes faster than the
/// spawn, so row count alone is the wrong gate.
pub const PARALLEL_MIN_WORK: usize = 1 << 20;

/// Whether the work-size gates allow threading `rows × work` across the
/// given budget (step 1 of the module's decision tree).
#[inline]
fn threads_pay_off(threads: usize, rows: usize, work: usize) -> bool {
    threads > 1 && rows >= PARALLEL_MIN_ROWS && work >= PARALLEL_MIN_WORK
}

fn check_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(
        a.shape().rank(),
        2,
        "matmul lhs must be 2-D, got {}",
        a.shape()
    );
    assert_eq!(
        b.shape().rank(),
        2,
        "matmul rhs must be 2-D, got {}",
        b.shape()
    );
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims differ: {} vs {}",
        a.shape(),
        b.shape()
    );
    (m, k, n)
}

/// Reference triple-loop matmul (ikj order, so the inner loop streams both
/// `B` and `C`). Kept deliberately scalar and branch-free: it is the
/// independent reference the lane kernels are asserted bit-identical
/// against (per-element accumulation order over `p` is the same).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions differ.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_dims(a, b);
    let (ad, bd) = (a.data(), b.data());
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            let brow = &bd[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    Tensor::from_vec(c, &[m, n])
}

/// Cache-blocked, lane-parallel matmul; bit-identical to [`matmul_naive`]
/// (blocking only regroups the `p` loop in increasing order, and the lane
/// axpy preserves per-element operation order).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions differ.
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_dims(a, b);
    let mut c = vec![0.0f32; m * n];
    matmul_blocked_into(a.data(), b.data(), &mut c, m, k, n);
    Tensor::from_vec(c, &[m, n])
}

fn matmul_blocked_into(ad: &[f32], bd: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let arow = &ad[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + j0..i * n + j1];
                    for p in p0..p1 {
                        simd::axpy(crow, arow[p], &bd[p * n + j0..p * n + j1]);
                    }
                }
            }
        }
    }
}

/// Multi-threaded blocked matmul. Splits rows of `A` across `threads` OS
/// threads via crossbeam's scoped threads; falls back to the single-threaded
/// kernel below the work-size gates (see the module docs).
///
/// # Panics
///
/// Panics if either operand is not 2-D, the inner dimensions differ, or
/// `threads == 0`.
pub fn matmul_parallel(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert!(threads > 0, "threads must be positive");
    let (m, k, n) = check_dims(a, b);
    if !threads_pay_off(threads, m, m * k * n) {
        return matmul_blocked(a, b);
    }
    let mut c = vec![0.0f32; m * n];
    let rows_per = m.div_ceil(threads);
    let (ad, bd) = (a.data(), b.data());
    crossbeam::scope(|s| {
        for (t, chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let i0 = t * rows_per;
            let rows = chunk.len() / n;
            let a_slice = &ad[i0 * k..(i0 + rows) * k];
            s.spawn(move |_| {
                matmul_blocked_into(a_slice, bd, chunk, rows, k, n);
            });
        }
    })
    .expect("matmul worker thread panicked");
    Tensor::from_vec(c, &[m, n])
}

/// Computes `A · Bᵀ` without materialising the transpose. Useful for
/// gradient kernels (`dX = dY · Wᵀ`) — it sits on the autograd hot path, so
/// it gets the full blocked + threaded + lane treatment: tiles of `C` are
/// filled with [`crate::simd::dot`] contractions (both operands stream
/// contiguously along `k`), and output rows split across the caller's
/// kernel budget behind the standard work-size gates.
///
/// Each element is one `simd::dot`, i.e. the fixed multi-accumulator
/// schedule on every path — *not* the sequential fold earlier revisions
/// used. Threading never reorders it, so results are bit-identical at any
/// budget.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the contraction dims differ
/// (`a: [m,k]`, `b: [n,k]`).
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_bt rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_bt contraction dims differ");
    let (ad, bd) = (a.data(), b.data());
    let mut c = vec![0.0f32; m * n];
    let threads = crate::threads::kernel_threads();
    if !threads_pay_off(threads, m, m * k * n) {
        matmul_bt_into(ad, bd, &mut c, k, n);
    } else {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|s| {
            for (t, chunk) in c.chunks_mut(rows_per * n).enumerate() {
                let i0 = t * rows_per;
                let rows = chunk.len() / n;
                let a_slice = &ad[i0 * k..(i0 + rows) * k];
                s.spawn(move |_| {
                    matmul_bt_into(a_slice, bd, chunk, k, n);
                });
            }
        })
        .expect("matmul_bt worker thread panicked");
    }
    Tensor::from_vec(c, &[m, n])
}

/// `c[i,j] = dot(a[i], b[j])` over `c`'s rows, tiled so a [`BLOCK`]-wide
/// panel of `B` rows stays cache-hot while `A` streams past it.
fn matmul_bt_into(ad: &[f32], bd: &[f32], c: &mut [f32], k: usize, n: usize) {
    let m = ad.len() / k; // dims are positive: Shape forbids zero dims

    for j0 in (0..n).step_by(BLOCK) {
        let j1 = (j0 + BLOCK).min(n);
        for i in 0..m {
            let arow = &ad[i * k..(i + 1) * k];
            for j in j0..j1 {
                c[i * n + j] = simd::dot(arow, &bd[j * k..(j + 1) * k]);
            }
        }
    }
}

/// Computes `Aᵀ · B` without materialising the transpose. Useful for weight
/// gradients (`dW = Xᵀ · dY`) — like [`matmul_bt`] it is an autograd hot
/// path and gets the blocked + threaded + lane treatment: the inner loop is
/// the same lane axpy as [`matmul_blocked`] (elementwise over `j`, so
/// per-element accumulation order over `p` is preserved exactly), output
/// rows tile by [`BLOCK`] for cache reuse and split across the caller's
/// kernel budget behind the standard work-size gates. Bit-identical at any
/// budget and on every lane path.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the row counts differ
/// (`a: [k,m]`, `b: [k,n]`).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_at lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_at rhs must be 2-D");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_at row counts differ");
    let (ad, bd) = (a.data(), b.data());
    let mut c = vec![0.0f32; m * n];
    let threads = crate::threads::kernel_threads();
    if !threads_pay_off(threads, m, m * k * n) {
        matmul_at_into(ad, bd, &mut c, k, m, n, 0);
    } else {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|s| {
            for (t, chunk) in c.chunks_mut(rows_per * n).enumerate() {
                let i0 = t * rows_per;
                s.spawn(move |_| {
                    matmul_at_into(ad, bd, chunk, k, m, n, i0);
                });
            }
        })
        .expect("matmul_at worker thread panicked");
    }
    Tensor::from_vec(c, &[m, n])
}

/// Accumulates output rows `i0 .. i0 + c.len()/n` of `Aᵀ·B` into `c`
/// (`a: [k,m]` column-major for the output, `b: [k,n]`), tiling the rows by
/// [`BLOCK`] so the active slab of `c` stays cache-resident while `B`
/// streams past it once per tile.
fn matmul_at_into(ad: &[f32], bd: &[f32], c: &mut [f32], k: usize, m: usize, n: usize, i0: usize) {
    let rows = c.len() / n; // dims are positive: Shape forbids zero dims
    for r0 in (0..rows).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(rows);
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for r in r0..r1 {
                simd::axpy(&mut c[r * n..(r + 1) * n], arow[i0 + r], brow);
            }
        }
    }
}

impl Tensor {
    /// Matrix product `self · other`, dispatching on the caller's kernel
    /// thread budget (see [`crate::threads`]) and the work-size gates — the
    /// full decision tree is in the [module docs](self). All paths produce
    /// bit-identical results, so neither the budget nor the lane path ever
    /// affects values.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let budget = crate::threads::kernel_threads();
        if budget > 1 {
            matmul_parallel(self, other, budget)
        } else {
            matmul_blocked(self, other)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::LanePath;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
        Tensor::rand_uniform(rng, &[r, c], -1.0, 1.0)
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn kernels_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 5), (65, 64, 66), (130, 20, 33)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let naive = matmul_naive(&a, &b);
            // Blocked (and therefore parallel) is bit-identical to naive,
            // not merely close: blocking regroups the p loop in increasing
            // order and the lane axpy preserves per-element op order.
            assert_eq!(matmul_blocked(&a, &b).data(), naive.data());
            assert_eq!(matmul_parallel(&a, &b, 4).data(), naive.data());
        }
    }

    #[test]
    fn transposed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = rand_mat(&mut rng, 9, 6);
        let b = rand_mat(&mut rng, 6, 11);
        let c = a.matmul(&b);
        assert!(matmul_bt(&a, &b.transpose2()).allclose(&c, 1e-4));
        assert!(matmul_at(&a.transpose2(), &b).allclose(&c, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = rand_mat(&mut rng, 12, 12);
        assert!(a.matmul(&Tensor::eye(12)).allclose(&a, 1e-6));
        assert!(Tensor::eye(12).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    fn parallel_is_bit_identical_around_fallback_threshold() {
        // matmul_parallel falls back to the blocked kernel below
        // PARALLEL_MIN_ROWS rows or PARALLEL_MIN_WORK multiply-adds; on
        // either side of both gates (and exactly at them) results must
        // match the blocked kernel bit-for-bit, since row partitioning
        // never changes any row's accumulation order. The lane path must
        // not change values either, so the whole matrix re-runs per path
        // (threads × lanes).
        let mut rng = StdRng::seed_from_u64(6);
        // (k, n) = (17, 9): above the row gate but far below the work
        // gate -> fallback. (96, 96): m=128 crosses both gates -> the
        // threaded path actually runs.
        for (k, n) in [(17usize, 9usize), (96, 96)] {
            for m in [
                PARALLEL_MIN_ROWS - 1,
                PARALLEL_MIN_ROWS,
                PARALLEL_MIN_ROWS + 1,
            ] {
                let a = rand_mat(&mut rng, m, k);
                let b = rand_mat(&mut rng, k, n);
                let blocked = crate::simd::with_path(LanePath::Scalar, || matmul_blocked(&a, &b));
                for path in [LanePath::Scalar, LanePath::Avx2] {
                    for threads in [1, 2, 3, 8] {
                        let par = crate::simd::with_path(path, || matmul_parallel(&a, &b, threads));
                        assert_eq!(
                            par.data(),
                            blocked.data(),
                            "m={m} k={k} n={n} threads={threads} path={path} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn transposed_variants_bit_identical_across_threads_and_lanes() {
        // matmul_bt / matmul_at consult the kernel budget themselves; every
        // (budget × lane path) cell must match the serial scalar run
        // bit-for-bit. m crosses the row gate so the threaded path runs.
        let mut rng = StdRng::seed_from_u64(10);
        let m = PARALLEL_MIN_ROWS + 5;
        let (k, n) = (96, 96);
        let a_bt = rand_mat(&mut rng, m, k);
        let b_bt = rand_mat(&mut rng, n, k);
        let a_at = rand_mat(&mut rng, k, m);
        let b_at = rand_mat(&mut rng, k, n);
        let bt_ref = crate::simd::with_path(LanePath::Scalar, || matmul_bt(&a_bt, &b_bt));
        let at_ref = crate::simd::with_path(LanePath::Scalar, || matmul_at(&a_at, &b_at));
        for path in [LanePath::Scalar, LanePath::Avx2] {
            for threads in [1usize, 2, 3, 8] {
                let (bt, at) = crate::simd::with_path(path, || {
                    crate::threads::with_kernel_threads(threads, || {
                        (matmul_bt(&a_bt, &b_bt), matmul_at(&a_at, &b_at))
                    })
                });
                assert_eq!(bt.data(), bt_ref.data(), "bt threads={threads} path={path}");
                assert_eq!(at.data(), at_ref.data(), "at threads={threads} path={path}");
            }
        }
    }

    #[test]
    fn work_gate_sits_at_parallel_min_work() {
        // 128 rows passes the row gate either way; k·n decides the work
        // gate. Both sides must agree with the blocked kernel exactly.
        let mut rng = StdRng::seed_from_u64(9);
        let m = PARALLEL_MIN_ROWS;
        let kn_under = PARALLEL_MIN_WORK / m - 1;
        let (k, n) = (64, kn_under / 64); // m*k*n just under the gate
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        assert_eq!(
            matmul_parallel(&a, &b, 4).data(),
            matmul_blocked(&a, &b).data()
        );
        let n_over = PARALLEL_MIN_WORK / (m * k) + 1; // just over
        let b = rand_mat(&mut rng, k, n_over);
        assert_eq!(
            matmul_parallel(&a, &b, 4).data(),
            matmul_blocked(&a, &b).data()
        );
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = rand_mat(&mut rng, PARALLEL_MIN_ROWS, 5);
        let b = rand_mat(&mut rng, 5, 3);
        let par = matmul_parallel(&a, &b, PARALLEL_MIN_ROWS * 2);
        assert_eq!(par.data(), matmul_blocked(&a, &b).data());
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_panics() {
        let a = Tensor::zeros(&[2, 2]);
        matmul_parallel(&a, &a, 0);
    }

    #[test]
    fn matmul_dispatches_on_kernel_budget() {
        // Tensor::matmul consults the thread-local kernel budget; whatever
        // the budget, values are bit-identical to the blocked kernel.
        let mut rng = StdRng::seed_from_u64(8);
        let a = rand_mat(&mut rng, PARALLEL_MIN_ROWS + 3, 11);
        let b = rand_mat(&mut rng, 11, 7);
        let blocked = matmul_blocked(&a, &b);
        assert_eq!(a.matmul(&b).data(), blocked.data());
        crate::threads::with_kernel_threads(4, || {
            assert_eq!(a.matmul(&b).data(), blocked.data());
        });
    }

    #[test]
    fn zero_times_special_values_propagate() {
        // The zero-skip branches are gone: 0·x participates per IEEE-754.
        // A zero row of A against NaN/∞ in B is NaN, and the sign of a
        // 0·(-x) product no longer survives (-0.0 + 0.0 == +0.0).
        let a = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0, -2.0], &[2, 2]);
        for (name, c) in [
            ("naive", matmul_naive(&a, &b)),
            ("blocked", matmul_blocked(&a, &b)),
            ("at", matmul_at(&a.transpose2(), &b)),
        ] {
            assert!(c.data()[0].is_nan(), "{name}: 0·NaN must propagate NaN");
            assert!(c.data()[1].is_nan(), "{name}: 0·∞ + 0·(-2) must be NaN");
        }
        // All-finite: 0·(-x) yields -0.0, which the accumulation folds to
        // +0.0 (never -0.0) because every sum starts from the +0.0 in C.
        let b = Tensor::from_vec(vec![-1.0, -0.0, -3.0, -4.0], &[2, 2]);
        for c in [
            matmul_naive(&a, &b),
            matmul_blocked(&a, &b),
            matmul_at(&a.transpose2(), &b),
        ] {
            assert_eq!(c.data()[0].to_bits(), 0.0f32.to_bits());
            assert_eq!(c.data()[1].to_bits(), 0.0f32.to_bits());
        }
        // matmul_bt contracts NaN the same way: dot([0,0], [NaN,1]) is NaN.
        let bt = matmul_bt(&a, &Tensor::from_vec(vec![f32::NAN, 1.0], &[1, 2]));
        assert!(bt.data()[0].is_nan());
    }
}
