//! Matrix-multiplication kernels: naive, cache-blocked, and multi-threaded.
//!
//! All variants compute `C = A · B` for 2-D tensors and are exact-equivalent;
//! the blocked/threaded versions exist purely for throughput. The ablation
//! bench `matmul_kernels` (crate `hgnas-bench`) compares them.

use crate::Tensor;

/// Cache-block edge length used by [`matmul_blocked`]. 64 f32 = 256 B per
/// panel row, sized so three panels fit comfortably in L1.
pub const BLOCK: usize = 64;

/// Rows-per-thread threshold below which [`matmul_parallel`] falls back to
/// the single-threaded blocked kernel.
pub const PARALLEL_MIN_ROWS: usize = 128;

/// Minimum total work (`m·k·n` multiply-adds) for [`matmul_parallel`] to
/// spawn threads. Scoped threads cost ~100 µs to spawn+join; a skinny
/// matmul over this many rows but few columns finishes faster than the
/// spawn, so row count alone is the wrong gate.
pub const PARALLEL_MIN_WORK: usize = 1 << 20;

fn check_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(
        a.shape().rank(),
        2,
        "matmul lhs must be 2-D, got {}",
        a.shape()
    );
    assert_eq!(
        b.shape().rank(),
        2,
        "matmul rhs must be 2-D, got {}",
        b.shape()
    );
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims differ: {} vs {}",
        a.shape(),
        b.shape()
    );
    (m, k, n)
}

/// Reference triple-loop matmul (ikj order, so the inner loop streams both
/// `B` and `C`).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions differ.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_dims(a, b);
    let (ad, bd) = (a.data(), b.data());
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
    Tensor::from_vec(c, &[m, n])
}

/// Cache-blocked matmul; identical result to [`matmul_naive`].
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions differ.
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_dims(a, b);
    let mut c = vec![0.0f32; m * n];
    matmul_blocked_into(a.data(), b.data(), &mut c, m, k, n);
    Tensor::from_vec(c, &[m, n])
}

fn matmul_blocked_into(ad: &[f32], bd: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let arow = &ad[i * k..(i + 1) * k];
                    let crow = &mut c[i * n..(i + 1) * n];
                    for p in p0..p1 {
                        let av = arow[p];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &bd[p * n..(p + 1) * n];
                        for j in j0..j1 {
                            crow[j] += av * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Multi-threaded blocked matmul. Splits rows of `A` across `threads` OS
/// threads via crossbeam's scoped threads; falls back to the single-threaded
/// kernel for small problems.
///
/// # Panics
///
/// Panics if either operand is not 2-D, the inner dimensions differ, or
/// `threads == 0`.
pub fn matmul_parallel(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert!(threads > 0, "threads must be positive");
    let (m, k, n) = check_dims(a, b);
    if threads == 1 || m < PARALLEL_MIN_ROWS || m * k * n < PARALLEL_MIN_WORK {
        return matmul_blocked(a, b);
    }
    let mut c = vec![0.0f32; m * n];
    let rows_per = m.div_ceil(threads);
    let (ad, bd) = (a.data(), b.data());
    crossbeam::scope(|s| {
        for (t, chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let i0 = t * rows_per;
            let rows = chunk.len() / n;
            let a_slice = &ad[i0 * k..(i0 + rows) * k];
            s.spawn(move |_| {
                matmul_blocked_into(a_slice, bd, chunk, rows, k, n);
            });
        }
    })
    .expect("matmul worker thread panicked");
    Tensor::from_vec(c, &[m, n])
}

/// Computes `A · Bᵀ` without materialising the transpose. Useful for
/// gradient kernels (`dX = dY · Wᵀ`).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the contraction dims differ
/// (`a: [m,k]`, `b: [n,k]`).
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_bt rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_bt contraction dims differ");
    let (ad, bd) = (a.data(), b.data());
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            c[i * n + j] = acc;
        }
    }
    Tensor::from_vec(c, &[m, n])
}

/// Computes `Aᵀ · B` without materialising the transpose. Useful for weight
/// gradients (`dW = Xᵀ · dY`).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the row counts differ
/// (`a: [k,m]`, `b: [k,n]`).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_at lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_at rhs must be 2-D");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_at row counts differ");
    let (ad, bd) = (a.data(), b.data());
    let mut c = vec![0.0f32; m * n];
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for i in 0..m {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
    Tensor::from_vec(c, &[m, n])
}

impl Tensor {
    /// Matrix product `self · other`, dispatching on the caller's kernel
    /// thread budget (see [`crate::threads`]): the threaded kernel when the
    /// budget allows, the blocked kernel otherwise. Both kernels produce
    /// bit-identical results, so the budget never affects values.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let budget = crate::threads::kernel_threads();
        if budget > 1 {
            matmul_parallel(self, other, budget)
        } else {
            matmul_blocked(self, other)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(rng: &mut StdRng, r: usize, c: usize) -> Tensor {
        Tensor::rand_uniform(rng, &[r, c], -1.0, 1.0)
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn kernels_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 5), (65, 64, 66), (130, 20, 33)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let naive = matmul_naive(&a, &b);
            assert!(matmul_blocked(&a, &b).allclose(&naive, 1e-4));
            assert!(matmul_parallel(&a, &b, 4).allclose(&naive, 1e-4));
        }
    }

    #[test]
    fn transposed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = rand_mat(&mut rng, 9, 6);
        let b = rand_mat(&mut rng, 6, 11);
        let c = a.matmul(&b);
        assert!(matmul_bt(&a, &b.transpose2()).allclose(&c, 1e-4));
        assert!(matmul_at(&a.transpose2(), &b).allclose(&c, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = rand_mat(&mut rng, 12, 12);
        assert!(a.matmul(&Tensor::eye(12)).allclose(&a, 1e-6));
        assert!(Tensor::eye(12).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    fn parallel_is_bit_identical_around_fallback_threshold() {
        // matmul_parallel falls back to the blocked kernel below
        // PARALLEL_MIN_ROWS rows or PARALLEL_MIN_WORK multiply-adds; on
        // either side of both gates (and exactly at them) results must
        // match the blocked kernel bit-for-bit, since row partitioning
        // never changes any row's accumulation order.
        let mut rng = StdRng::seed_from_u64(6);
        // (k, n) = (17, 9): above the row gate but far below the work
        // gate -> fallback. (96, 96): m=128 crosses both gates -> the
        // threaded path actually runs.
        for (k, n) in [(17usize, 9usize), (96, 96)] {
            for m in [
                PARALLEL_MIN_ROWS - 1,
                PARALLEL_MIN_ROWS,
                PARALLEL_MIN_ROWS + 1,
            ] {
                let a = rand_mat(&mut rng, m, k);
                let b = rand_mat(&mut rng, k, n);
                let blocked = matmul_blocked(&a, &b);
                for threads in [1, 2, 3, 8] {
                    let par = matmul_parallel(&a, &b, threads);
                    assert_eq!(
                        par.data(),
                        blocked.data(),
                        "m={m} k={k} n={n} threads={threads} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn work_gate_sits_at_parallel_min_work() {
        // 128 rows passes the row gate either way; k·n decides the work
        // gate. Both sides must agree with the blocked kernel exactly.
        let mut rng = StdRng::seed_from_u64(9);
        let m = PARALLEL_MIN_ROWS;
        let kn_under = PARALLEL_MIN_WORK / m - 1;
        let (k, n) = (64, kn_under / 64); // m*k*n just under the gate
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        assert_eq!(
            matmul_parallel(&a, &b, 4).data(),
            matmul_blocked(&a, &b).data()
        );
        let n_over = PARALLEL_MIN_WORK / (m * k) + 1; // just over
        let b = rand_mat(&mut rng, k, n_over);
        assert_eq!(
            matmul_parallel(&a, &b, 4).data(),
            matmul_blocked(&a, &b).data()
        );
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = rand_mat(&mut rng, PARALLEL_MIN_ROWS, 5);
        let b = rand_mat(&mut rng, 5, 3);
        let par = matmul_parallel(&a, &b, PARALLEL_MIN_ROWS * 2);
        assert_eq!(par.data(), matmul_blocked(&a, &b).data());
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_panics() {
        let a = Tensor::zeros(&[2, 2]);
        matmul_parallel(&a, &a, 0);
    }

    #[test]
    fn matmul_dispatches_on_kernel_budget() {
        // Tensor::matmul consults the thread-local kernel budget; whatever
        // the budget, values are bit-identical to the blocked kernel.
        let mut rng = StdRng::seed_from_u64(8);
        let a = rand_mat(&mut rng, PARALLEL_MIN_ROWS + 3, 11);
        let b = rand_mat(&mut rng, 11, 7);
        let blocked = matmul_blocked(&a, &b);
        assert_eq!(a.matmul(&b).data(), blocked.data());
        crate::threads::with_kernel_threads(4, || {
            assert_eq!(a.matmul(&b).data(), blocked.data());
        });
    }
}
