//! Property-based tests for the tensor kernels.

use hgnas_tensor::kernels::{
    concat_cols, fold_rows, gather_rows, repeat_rows, row_norms, scatter_add_rows, split_cols,
};
use hgnas_tensor::matmul::{matmul_at, matmul_blocked, matmul_bt, matmul_naive, matmul_parallel};
use hgnas_tensor::reduce::{reduce_mid_axis, segment_reduce_rows, Reduction};
use hgnas_tensor::simd::{self, LanePath};
use hgnas_tensor::threads::with_kernel_threads;
use hgnas_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]))
}

/// Runs `f` once on the scalar path and once on the lane path (which degrades
/// to scalar on hosts without AVX2) and returns both results for bitwise
/// comparison.
fn on_both_paths<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let scalar = simd::with_path(LanePath::Scalar, &mut f);
    let lanes = simd::with_path(LanePath::Avx2, &mut f);
    (scalar, lanes)
}

/// Single-float strategy that mixes finite values with the IEEE specials
/// the lane kernels must reproduce exactly: NaN, ±∞, and −0.0.
fn special_f32() -> impl Strategy<Value = f32> {
    (0usize..14, -10.0f32..10.0).prop_map(|(pick, v)| match pick {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => 1e-30,
        _ => v,
    })
}

/// Bitwise equality of two tensors (NaN == NaN, -0.0 != +0.0).
fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_kernels_agree(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -2.0, 2.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        let reference = matmul_naive(&a, &b);
        prop_assert!(matmul_blocked(&a, &b).allclose(&reference, 1e-3));
        prop_assert!(matmul_parallel(&a, &b, 3).allclose(&reference, 1e-3));
        prop_assert!(matmul_bt(&a, &b.transpose2()).allclose(&reference, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -2.0, 2.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        let c = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        // A(B + C) == AB + AC
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn transpose_is_involution(t in tensor_strategy(7, 5)) {
        prop_assert!(t.transpose2().transpose2().allclose(&t, 0.0));
    }

    #[test]
    fn concat_split_round_trip(a in tensor_strategy(6, 3), b in tensor_strategy(6, 4)) {
        let cat = concat_cols(&[&a, &b]);
        let parts = split_cols(&cat, &[3, 4]);
        prop_assert!(parts[0].allclose(&a, 0.0));
        prop_assert!(parts[1].allclose(&b, 0.0));
    }

    #[test]
    fn repeat_then_fold_scales(t in tensor_strategy(5, 3), k in 1usize..6) {
        let folded = fold_rows(&repeat_rows(&t, k), k);
        prop_assert!(folded.allclose(&t.scale(k as f32), 1e-4));
    }

    #[test]
    fn gather_scatter_degree_weighted(
        t in tensor_strategy(6, 2),
        idx in prop::collection::vec(0usize..6, 1..20)
    ) {
        let gathered = gather_rows(&t, &idx);
        let scattered = scatter_add_rows(&gathered, &idx, 6);
        // Row i of the result equals count(i in idx) * t[i].
        for i in 0..6 {
            let count = idx.iter().filter(|&&j| j == i).count() as f32;
            for c in 0..2 {
                prop_assert!((scattered.at2(i, c) - count * t.at2(i, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn reductions_bounded_by_extremes(
        data in prop::collection::vec(-100.0f32..100.0, 24)
    ) {
        let t = Tensor::from_vec(data, &[2, 4, 3]);
        let max = reduce_mid_axis(&t, Reduction::Max).values;
        let min = reduce_mid_axis(&t, Reduction::Min).values;
        let mean = reduce_mid_axis(&t, Reduction::Mean).values;
        for i in 0..max.numel() {
            prop_assert!(min.data()[i] <= mean.data()[i] + 1e-4);
            prop_assert!(mean.data()[i] <= max.data()[i] + 1e-4);
        }
    }

    #[test]
    fn sum_reduction_matches_k_times_mean(
        data in prop::collection::vec(-10.0f32..10.0, 30)
    ) {
        let t = Tensor::from_vec(data, &[2, 5, 3]);
        let sum = reduce_mid_axis(&t, Reduction::Sum).values;
        let mean = reduce_mid_axis(&t, Reduction::Mean).values;
        prop_assert!(sum.allclose(&mean.scale(5.0), 1e-3));
    }
}

// ---------------------------------------------------------------------------
// scalar == lane bit-identity
//
// Every kernel ported to the `simd` lane layer must produce the exact same
// bits whether the AVX2 leg or the scalar fallback runs, at every thread
// budget. Shapes are deliberately ragged (not multiples of the 8-wide lane)
// so the remainder schedule is exercised too.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_primitives_bit_identical(
        len in 1usize..70, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[1, len], -3.0, 3.0);
        let y = Tensor::rand_uniform(&mut rng, &[1, len], -3.0, 3.0);
        let acc0 = Tensor::rand_uniform(&mut rng, &[1, len], -3.0, 3.0);

        let (s, l) = on_both_paths(|| {
            let mut acc = acc0.data().to_vec();
            simd::axpy(&mut acc, 1.7, x.data());
            simd::add_assign(&mut acc, y.data());
            simd::scale(&mut acc, 0.3);
            (acc, simd::dot(x.data(), y.data()))
        });
        prop_assert!(s.0.iter().zip(&l.0).all(|(a, b)| a.to_bits() == b.to_bits()));
        prop_assert_eq!(s.1.to_bits(), l.1.to_bits());
    }

    #[test]
    fn elementwise_kernels_bit_identical(
        len in 1usize..70,
        data in prop::collection::vec(special_f32(), 3 * 70),
        slope in 0.01f32..0.5,
    ) {
        // Three ragged slices drawn from the same special-laden pool: the
        // IEEE contract (NaN, ±∞, −0.0 behaviour) must hold bit-for-bit on
        // both paths, including the sub-8-lane remainder.
        let x = &data[..len];
        let y = &data[70..70 + len];
        let g0 = &data[140..140 + len];

        let (s, l) = on_both_paths(|| {
            let mut a = x.to_vec();
            simd::sub_assign(&mut a, y);
            let mut b = x.to_vec();
            simd::mul_assign(&mut b, y);
            let mut r = x.to_vec();
            simd::relu(&mut r);
            let mut lr = x.to_vec();
            simd::leaky_relu(&mut lr, slope);
            let mut gr = g0.to_vec();
            simd::relu_grad(&mut gr, x);
            let mut glr = g0.to_vec();
            simd::leaky_relu_grad(&mut glr, x, slope);
            (a, b, r, lr, gr, glr)
        });
        let pairs: [(&[f32], &[f32]); 6] = [
            (&s.0, &l.0), (&s.1, &l.1), (&s.2, &l.2),
            (&s.3, &l.3), (&s.4, &l.4), (&s.5, &l.5),
        ];
        for (i, (a, b)) in pairs.iter().enumerate() {
            prop_assert!(
                a.iter().zip(b.iter()).all(|(p, q)| p.to_bits() == q.to_bits()),
                "elementwise kernel {} diverged between paths", i
            );
        }
    }

    #[test]
    fn adam_step_bit_identical(
        len in 1usize..70, t in 1u32..50, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w0 = Tensor::rand_uniform(&mut rng, &[1, len], -3.0, 3.0);
        let m0 = Tensor::rand_uniform(&mut rng, &[1, len], -1.0, 1.0);
        // Second moments are sums of squares: non-negative by construction.
        let v0 = Tensor::rand_uniform(&mut rng, &[1, len], 0.0, 2.0);
        let g = Tensor::rand_uniform(&mut rng, &[1, len], -5.0, 5.0);
        let p = simd::AdamParams {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            inv_bc1: 1.0 / (1.0 - 0.9f32.powi(t as i32)),
            inv_bc2: 1.0 / (1.0 - 0.999f32.powi(t as i32)),
        };

        let (s, l) = on_both_paths(|| {
            let (mut w, mut m, mut v) =
                (w0.data().to_vec(), m0.data().to_vec(), v0.data().to_vec());
            simd::adam_step(&mut w, &mut m, &mut v, g.data(), p);
            (w, m, v)
        });
        prop_assert!(s.0.iter().zip(&l.0).all(|(a, b)| a.to_bits() == b.to_bits()), "w diverged");
        prop_assert!(s.1.iter().zip(&l.1).all(|(a, b)| a.to_bits() == b.to_bits()), "m diverged");
        prop_assert!(s.2.iter().zip(&l.2).all(|(a, b)| a.to_bits() == b.to_bits()), "v diverged");
    }

    #[test]
    fn distances_3d_bit_identical(
        n in 1usize..40, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::rand_uniform(&mut rng, &[1, 3], -1.0, 1.0);
        let pts = Tensor::rand_uniform(&mut rng, &[n, 3], -1.0, 1.0);
        // Every other point, reversed: a ragged, non-contiguous index set.
        let idx: Vec<usize> = (0..n).rev().step_by(2).collect();

        let (s, l) = on_both_paths(|| {
            let mut d = vec![0.0f32; n];
            simd::squared_distances_3d(q.data(), pts.data(), &mut d);
            let mut di = vec![0.0f32; idx.len()];
            simd::squared_distances_3d_indexed(q.data(), pts.data(), &idx, &mut di);
            (d, di)
        });
        prop_assert!(s.0.iter().zip(&l.0).all(|(a, b)| a.to_bits() == b.to_bits()));
        prop_assert!(s.1.iter().zip(&l.1).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn matmul_family_bit_identical(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        threads in 1usize..5, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -2.0, 2.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        let at = a.transpose2();
        let bt = b.transpose2();

        let (s, l) = on_both_paths(|| with_kernel_threads(threads, || (
            matmul_blocked(&a, &b),
            matmul_parallel(&a, &b, threads),
            matmul_bt(&a, &bt),
            matmul_at(&at, &b),
        )));
        prop_assert!(bits_eq(&s.0, &l.0), "blocked diverged");
        prop_assert!(bits_eq(&s.1, &l.1), "parallel diverged");
        prop_assert!(bits_eq(&s.2, &l.2), "bt diverged");
        prop_assert!(bits_eq(&s.3, &l.3), "at diverged");
        // The serial blocked kernel is also the parallel kernel's per-chunk
        // body: same bits at any thread budget.
        prop_assert!(bits_eq(&s.0, &s.1), "threads changed bits");
    }

    #[test]
    fn reductions_bit_identical(
        rows in 1usize..6, mid in 1usize..12, cols in 1usize..12, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &[rows, mid, cols], -5.0, 5.0);
        let flat = Tensor::rand_uniform(&mut rng, &[mid, cols], -5.0, 5.0);
        // Ragged segment lengths (3,3,...,remainder) summing to the row count.
        let mut segments = vec![3usize; mid / 3];
        if mid % 3 != 0 {
            segments.push(mid % 3);
        }

        for how in [Reduction::Sum, Reduction::Mean] {
            let (s, l) = on_both_paths(|| (
                reduce_mid_axis(&t, how).values,
                segment_reduce_rows(&flat, &segments, how).values,
            ));
            prop_assert!(bits_eq(&s.0, &l.0), "reduce_mid_axis diverged");
            prop_assert!(bits_eq(&s.1, &l.1), "segment_reduce_rows diverged");
        }
    }

    #[test]
    fn row_kernels_bit_identical(
        rows in 1usize..10, cols in 1usize..20, k in 1usize..5, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &[rows * k, cols], -4.0, 4.0);
        let idx: Vec<usize> = (0..rows * k).map(|i| i % rows).collect();

        let (s, l) = on_both_paths(|| (
            scatter_add_rows(&t, &idx, rows),
            fold_rows(&t, k),
            row_norms(&t),
        ));
        prop_assert!(bits_eq(&s.0, &l.0), "scatter_add_rows diverged");
        prop_assert!(bits_eq(&s.1, &l.1), "fold_rows diverged");
        prop_assert!(bits_eq(&s.2, &l.2), "row_norms diverged");
    }
}
