//! Property-based tests for the tensor kernels.

use hgnas_tensor::kernels::{
    concat_cols, fold_rows, gather_rows, repeat_rows, scatter_add_rows, split_cols,
};
use hgnas_tensor::matmul::{matmul_blocked, matmul_bt, matmul_naive, matmul_parallel};
use hgnas_tensor::reduce::{reduce_mid_axis, Reduction};
use hgnas_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_kernels_agree(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -2.0, 2.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        let reference = matmul_naive(&a, &b);
        prop_assert!(matmul_blocked(&a, &b).allclose(&reference, 1e-3));
        prop_assert!(matmul_parallel(&a, &b, 3).allclose(&reference, 1e-3));
        prop_assert!(matmul_bt(&a, &b.transpose2()).allclose(&reference, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -2.0, 2.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        let c = Tensor::rand_uniform(&mut rng, &[k, n], -2.0, 2.0);
        // A(B + C) == AB + AC
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn transpose_is_involution(t in tensor_strategy(7, 5)) {
        prop_assert!(t.transpose2().transpose2().allclose(&t, 0.0));
    }

    #[test]
    fn concat_split_round_trip(a in tensor_strategy(6, 3), b in tensor_strategy(6, 4)) {
        let cat = concat_cols(&[&a, &b]);
        let parts = split_cols(&cat, &[3, 4]);
        prop_assert!(parts[0].allclose(&a, 0.0));
        prop_assert!(parts[1].allclose(&b, 0.0));
    }

    #[test]
    fn repeat_then_fold_scales(t in tensor_strategy(5, 3), k in 1usize..6) {
        let folded = fold_rows(&repeat_rows(&t, k), k);
        prop_assert!(folded.allclose(&t.scale(k as f32), 1e-4));
    }

    #[test]
    fn gather_scatter_degree_weighted(
        t in tensor_strategy(6, 2),
        idx in prop::collection::vec(0usize..6, 1..20)
    ) {
        let gathered = gather_rows(&t, &idx);
        let scattered = scatter_add_rows(&gathered, &idx, 6);
        // Row i of the result equals count(i in idx) * t[i].
        for i in 0..6 {
            let count = idx.iter().filter(|&&j| j == i).count() as f32;
            for c in 0..2 {
                prop_assert!((scattered.at2(i, c) - count * t.at2(i, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn reductions_bounded_by_extremes(
        data in prop::collection::vec(-100.0f32..100.0, 24)
    ) {
        let t = Tensor::from_vec(data, &[2, 4, 3]);
        let max = reduce_mid_axis(&t, Reduction::Max).values;
        let min = reduce_mid_axis(&t, Reduction::Min).values;
        let mean = reduce_mid_axis(&t, Reduction::Mean).values;
        for i in 0..max.numel() {
            prop_assert!(min.data()[i] <= mean.data()[i] + 1e-4);
            prop_assert!(mean.data()[i] <= max.data()[i] + 1e-4);
        }
    }

    #[test]
    fn sum_reduction_matches_k_times_mean(
        data in prop::collection::vec(-10.0f32..10.0, 30)
    ) {
        let t = Tensor::from_vec(data, &[2, 5, 3]);
        let sum = reduce_mid_axis(&t, Reduction::Sum).values;
        let mean = reduce_mid_axis(&t, Reduction::Mean).values;
        prop_assert!(sum.allclose(&mean.scale(5.0), 1e-3));
    }
}
