//! Analytical edge-device performance simulator for HGNAS.
//!
//! The paper measures GNN inference on four physical platforms (Nvidia
//! RTX3080, Intel i7-8700K, Jetson TX2, Raspberry Pi 3B+). Those devices are
//! replaced here by a roofline-style analytical model (substitution S1 in
//! `DESIGN.md`): a lowered architecture becomes a sequence of
//! [`WorkloadOp`]s, each carrying FLOPs, memory traffic and buffer sizes,
//! and a [`DeviceProfile`] turns that into latency, an execution-time
//! breakdown by operation class, and peak memory (with out-of-memory
//! detection).
//!
//! Profiles are *calibrated*, not derived: per-class effective rates are
//! fitted so DGCNN at 1024 points reproduces the paper's Table II latencies,
//! the Fig. 3 breakdown shapes, and the Fig. 1 memory curve (including the
//! Raspberry Pi OOM point past 1536 points). The fitted constants stay
//! physically plausible (e.g. the Pi's dense-GEMM rate is ≈4 GFLOP/s —
//! OpenBLAS-on-A53 territory; the RTX3080's gather bandwidth is far below
//! its streaming bandwidth, matching PyG scatter behaviour).
//!
//! # Example
//!
//! ```
//! use hgnas_device::{DeviceKind, Workload, WorkloadOp};
//!
//! let mut w = Workload::new();
//! w.push(WorkloadOp::knn("knn", 1024, 20, 3));
//! let report = DeviceKind::Rtx3080.profile().execute(&w);
//! assert!(report.latency_ms > 0.0);
//! ```

mod exec;
mod persona;
mod profiles;
mod workload;

pub use exec::{ExecutionReport, MeasureError};
pub use persona::{
    builtin_slug, calibrate, collect_samples, parse_spec, CalibrationSample, DevicePersona,
    PersonaError, PersonaRegistry,
};
pub use profiles::{ClassRates, DeviceKind, DeviceProfile};
pub use workload::{OpClass, Workload, WorkloadOp};
