//! Device personas: profiles as data, not enum variants.
//!
//! [`DeviceKind`] stays the closed set of *built-in* device classes the
//! binary codecs index by, but everything that iterates devices — fleet
//! sharding, Table-1 reports, predictor training sweeps — goes through a
//! [`PersonaRegistry`]: an ordered collection of named [`DevicePersona`]s
//! seeded with the built-ins and extensible at runtime from a declarative
//! text spec ([`PersonaRegistry::register_spec`]) or by fitting a persona to
//! measured latencies ([`calibrate`]).
//!
//! Every persona carries a *base kind*: the built-in device class it is a
//! calibrated variant of. That keeps custom personas compatible with every
//! `DeviceKind`-keyed artifact (checkpoints, codec device indices) while the
//! profile itself — the thing the simulator actually reads — is free data.

use crate::exec::MeasureError;
use crate::profiles::{ClassRates, DeviceKind, DeviceProfile};
use crate::workload::{OpClass, Workload};
use std::fmt;

/// A named device profile. The built-in entries wrap
/// [`DeviceProfile::builtin`]; custom entries come from a spec or a
/// calibration fit and keep the base kind of the profile they derive from.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePersona {
    /// Registry key, unique per registry. Built-ins use stable slugs
    /// (`rtx3080`, `i7-8700k`, `jetson-tx2`, `raspberry-pi-3b`, `v100`).
    pub name: String,
    /// The profile the simulator executes against.
    pub profile: DeviceProfile,
}

impl DevicePersona {
    /// The built-in device class this persona derives from
    /// (`profile.kind`) — what checkpoints and codecs record.
    pub fn base_kind(&self) -> DeviceKind {
        self.profile.kind
    }

    /// Whether this is one of the built-in entries (name and profile both
    /// match the base kind exactly).
    pub fn is_builtin(&self) -> bool {
        self.name == builtin_slug(self.profile.kind) && self.profile == self.profile.kind.profile()
    }
}

/// Stable registry slug for a built-in device.
pub fn builtin_slug(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::Rtx3080 => "rtx3080",
        DeviceKind::I78700K => "i7-8700k",
        DeviceKind::JetsonTx2 => "jetson-tx2",
        DeviceKind::RaspberryPi3B => "raspberry-pi-3b",
        DeviceKind::V100 => "v100",
    }
}

/// What can go wrong assembling personas.
#[derive(Debug, Clone, PartialEq)]
pub enum PersonaError {
    /// A persona with this name is already registered.
    Duplicate(String),
    /// The spec text failed to parse; the payload says where and why.
    Spec(String),
    /// Calibration was asked to fit against unusable samples.
    Calibration(String),
}

impl fmt::Display for PersonaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersonaError::Duplicate(name) => write!(f, "persona {name:?} already registered"),
            PersonaError::Spec(msg) => write!(f, "bad persona spec: {msg}"),
            PersonaError::Calibration(msg) => write!(f, "calibration failed: {msg}"),
        }
    }
}

impl std::error::Error for PersonaError {}

/// An ordered, name-keyed collection of device personas.
///
/// Iteration order is registration order with the built-ins first (in
/// [`DeviceKind::ALL`] order), so report tables keep the paper's
/// presentation order and grow custom rows at the bottom.
#[derive(Debug, Clone)]
pub struct PersonaRegistry {
    entries: Vec<DevicePersona>,
}

impl PersonaRegistry {
    /// A registry holding exactly the built-in profiles.
    pub fn builtin() -> Self {
        PersonaRegistry {
            entries: DeviceKind::ALL
                .iter()
                .map(|&kind| DevicePersona {
                    name: builtin_slug(kind).to_string(),
                    profile: kind.profile(),
                })
                .collect(),
        }
    }

    /// An empty registry (no built-ins); useful for tests and for hosts
    /// that serve only bring-your-own-device personas.
    pub fn empty() -> Self {
        PersonaRegistry {
            entries: Vec::new(),
        }
    }

    /// Adds a persona.
    ///
    /// # Errors
    ///
    /// [`PersonaError::Duplicate`] if the name is taken.
    pub fn register(&mut self, persona: DevicePersona) -> Result<(), PersonaError> {
        if self.get(&persona.name).is_some() {
            return Err(PersonaError::Duplicate(persona.name));
        }
        self.entries.push(persona);
        Ok(())
    }

    /// Parses `spec` (see [`parse_spec`]) and registers the result.
    ///
    /// # Errors
    ///
    /// [`PersonaError::Spec`] on a malformed spec, [`PersonaError::Duplicate`]
    /// if the name is taken.
    pub fn register_spec(&mut self, spec: &str) -> Result<&DevicePersona, PersonaError> {
        let persona = parse_spec(spec)?;
        let name = persona.name.clone();
        self.register(persona)?;
        Ok(self.get(&name).expect("just registered"))
    }

    /// Looks a persona up by name.
    pub fn get(&self, name: &str) -> Option<&DevicePersona> {
        self.entries.iter().find(|p| p.name == name)
    }

    /// Every persona, in registration order (built-ins first).
    pub fn iter(&self) -> impl Iterator<Item = &DevicePersona> {
        self.entries.iter()
    }

    /// Personas that are deployment targets: everything except the V100
    /// search host. For the plain built-in registry this is exactly
    /// [`DeviceKind::EDGE_TARGETS`], in the paper's presentation order.
    pub fn edge_targets(&self) -> impl Iterator<Item = &DevicePersona> {
        self.entries
            .iter()
            .filter(|p| p.profile.kind != DeviceKind::V100 || !p.is_builtin())
    }

    /// Number of registered personas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for PersonaRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

/// Parses a declarative persona spec.
///
/// The format is line-oriented `key = value` pairs; `#` starts a comment.
/// A spec always names itself and a `base` built-in (the device class it is
/// a variant of — see [`builtin_slug`] for the accepted slugs); every other
/// key overrides one field of the base profile:
///
/// ```text
/// name = office-tx2          # required
/// base = jetson-tx2          # required: builtin slug this derives from
/// sample    = 4.4 20.0       # per-class rates: GFLOP/s GB/s
/// aggregate = 120.0 6.5
/// combine   = 330.0 40.0
/// other     = 4.0 1.43
/// overhead_us = 1500
/// base_mem_mb = 100
/// mem_factor = 1.0
/// avail_mem_mb = 8000
/// noise_sigma = 0.04
/// measurement_roundtrip_ms = 4000
/// power_w = 7.5
/// ```
///
/// # Errors
///
/// [`PersonaError::Spec`] describing the offending line.
pub fn parse_spec(spec: &str) -> Result<DevicePersona, PersonaError> {
    let mut name: Option<String> = None;
    let mut profile: Option<DeviceProfile> = None;
    let mut overrides: Vec<(String, Vec<f64>)> = Vec::new();
    for (lineno, raw) in spec.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| PersonaError::Spec(format!("line {}: missing '='", lineno + 1)))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "name" => name = Some(value.to_string()),
            "base" => {
                let kind = DeviceKind::ALL
                    .iter()
                    .copied()
                    .find(|&k| builtin_slug(k) == value)
                    .ok_or_else(|| {
                        PersonaError::Spec(format!("line {}: unknown base {value:?}", lineno + 1))
                    })?;
                profile = Some(kind.profile());
            }
            _ => {
                let nums: Result<Vec<f64>, _> =
                    value.split_whitespace().map(str::parse::<f64>).collect();
                let nums = nums.map_err(|e| {
                    PersonaError::Spec(format!("line {}: bad number ({e})", lineno + 1))
                })?;
                overrides.push((key.to_string(), nums));
            }
        }
    }
    let name = name.ok_or_else(|| PersonaError::Spec("missing 'name'".into()))?;
    let mut profile = profile.ok_or_else(|| PersonaError::Spec("missing 'base'".into()))?;
    for (key, nums) in overrides {
        apply_override(&mut profile, &key, &nums)?;
    }
    validate_profile(&profile)?;
    Ok(DevicePersona { name, profile })
}

fn apply_override(
    profile: &mut DeviceProfile,
    key: &str,
    nums: &[f64],
) -> Result<(), PersonaError> {
    let scalar = |nums: &[f64]| -> Result<f64, PersonaError> {
        match nums {
            [v] => Ok(*v),
            _ => Err(PersonaError::Spec(format!(
                "{key}: expected one number, got {}",
                nums.len()
            ))),
        }
    };
    let rates = |nums: &[f64]| -> Result<ClassRates, PersonaError> {
        match nums {
            [gflops, gbps] => Ok(ClassRates {
                gflops: *gflops,
                gbps: *gbps,
            }),
            _ => Err(PersonaError::Spec(format!(
                "{key}: expected 'GFLOP/s GB/s', got {} numbers",
                nums.len()
            ))),
        }
    };
    match key {
        "sample" => profile.rates[OpClass::Sample.index()] = rates(nums)?,
        "aggregate" => profile.rates[OpClass::Aggregate.index()] = rates(nums)?,
        "combine" => profile.rates[OpClass::Combine.index()] = rates(nums)?,
        "other" => profile.rates[OpClass::Other.index()] = rates(nums)?,
        "overhead_us" => profile.overhead_us = scalar(nums)?,
        "base_mem_mb" => profile.base_mem_mb = scalar(nums)?,
        "mem_factor" => profile.mem_factor = scalar(nums)?,
        "avail_mem_mb" => profile.avail_mem_mb = scalar(nums)?,
        "noise_sigma" => profile.noise_sigma = scalar(nums)?,
        "measurement_roundtrip_ms" => profile.measurement_roundtrip_ms = scalar(nums)?,
        "power_w" => profile.power_w = scalar(nums)?,
        _ => return Err(PersonaError::Spec(format!("unknown key {key:?}"))),
    }
    Ok(())
}

fn validate_profile(p: &DeviceProfile) -> Result<(), PersonaError> {
    for r in &p.rates {
        if !(r.gflops > 0.0 && r.gbps > 0.0) {
            return Err(PersonaError::Spec("rates must be positive".into()));
        }
    }
    if !(p.overhead_us >= 0.0 && p.avail_mem_mb > 0.0 && p.power_w > 0.0) {
        return Err(PersonaError::Spec(
            "overhead/avail_mem/power out of range".into(),
        ));
    }
    Ok(())
}

/// One measured-mode observation for [`calibrate`]: a lowered workload and
/// the latency the real board reported for it.
#[derive(Debug, Clone)]
pub struct CalibrationSample {
    /// The lowered architecture that was deployed.
    pub workload: Workload,
    /// Measured end-to-end latency, ms.
    pub measured_ms: f64,
}

/// Fits a persona to measured latencies: a bring-your-own-device board is
/// modelled as `base` with every per-class rate rescaled by one global
/// time-scale factor `s` (and dispatch overhead scaled with it), where `s`
/// is the least-squares fit of `measured ≈ s · predicted(base)` over the
/// samples. One factor is deliberate — with end-to-end latencies as the
/// only signal, per-class factors are not identifiable without per-class
/// timings, and a global fit is exact for the common case of "same
/// architecture, different clock/thermal envelope".
///
/// # Errors
///
/// [`PersonaError::Calibration`] when no sample is usable (non-finite or
/// non-positive measurement/prediction).
pub fn calibrate(
    name: &str,
    base: &DeviceProfile,
    samples: &[CalibrationSample],
) -> Result<DevicePersona, PersonaError> {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut used = 0usize;
    for s in samples {
        let predicted = base.execute(&s.workload).latency_ms;
        let usable = predicted > 0.0
            && s.measured_ms > 0.0
            && predicted.is_finite()
            && s.measured_ms.is_finite();
        if !usable {
            continue;
        }
        num += s.measured_ms * predicted;
        den += predicted * predicted;
        used += 1;
    }
    if used == 0 || den <= 0.0 {
        return Err(PersonaError::Calibration(
            "no usable samples (need positive finite measured latencies)".into(),
        ));
    }
    let scale = num / den;
    let mut profile = base.clone();
    for r in &mut profile.rates {
        r.gflops /= scale;
        r.gbps /= scale;
    }
    profile.overhead_us *= scale;
    Ok(DevicePersona {
        name: name.to_string(),
        profile,
    })
}

/// Collects calibration samples by measuring `workloads` through a
/// measurement closure (e.g. a fleet oracle round-trip), skipping
/// transient failures. A convenience for the common "deploy N probe
/// architectures, fit" flow.
///
/// # Errors
///
/// Propagates the first non-transient measurement error.
pub fn collect_samples(
    workloads: &[Workload],
    mut measure: impl FnMut(&Workload) -> Result<f64, MeasureError>,
) -> Result<Vec<CalibrationSample>, MeasureError> {
    let mut out = Vec::with_capacity(workloads.len());
    for w in workloads {
        match measure(w) {
            Ok(ms) => out.push(CalibrationSample {
                workload: w.clone(),
                measured_ms: ms,
            }),
            Err(e) if e.is_transient() => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe(n: usize) -> Workload {
        let mut w = Workload::new();
        w.push(WorkloadOp::knn("knn", n, 16, 3));
        w.push(WorkloadOp::gather("gather", n, 16, 32));
        w.push(WorkloadOp::linear("mlp", n * 16, 32, 32));
        w.push(WorkloadOp::reduce("max", n, 16, 32));
        w
    }

    #[test]
    fn builtin_registry_mirrors_device_kind() {
        let reg = PersonaRegistry::builtin();
        assert_eq!(reg.len(), DeviceKind::ALL.len());
        for kind in DeviceKind::ALL {
            let p = reg.get(builtin_slug(kind)).expect("builtin present");
            assert_eq!(p.profile, kind.profile());
            assert!(p.is_builtin());
        }
        let edge: Vec<DeviceKind> = reg.edge_targets().map(|p| p.base_kind()).collect();
        assert_eq!(edge, DeviceKind::EDGE_TARGETS.to_vec());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = PersonaRegistry::builtin();
        let err = reg
            .register(DevicePersona {
                name: "v100".into(),
                profile: DeviceKind::V100.profile(),
            })
            .unwrap_err();
        assert!(matches!(err, PersonaError::Duplicate(_)));
    }

    #[test]
    fn spec_round_trip_with_overrides() {
        let mut reg = PersonaRegistry::builtin();
        let spec = "
            # An office TX2 with a throttled GPU and more RAM.
            name = office-tx2
            base = jetson-tx2
            combine = 200.0 30.0
            avail_mem_mb = 16000
            power_w = 10.0
        ";
        let p = reg.register_spec(spec).expect("valid spec").clone();
        assert_eq!(p.name, "office-tx2");
        assert_eq!(p.base_kind(), DeviceKind::JetsonTx2);
        assert!(!p.is_builtin());
        let base = DeviceKind::JetsonTx2.profile();
        assert_eq!(p.profile.rates[OpClass::Combine.index()].gflops, 200.0);
        assert_eq!(p.profile.avail_mem_mb, 16_000.0);
        assert_eq!(p.profile.power_w, 10.0);
        // Untouched fields come from the base.
        assert_eq!(p.profile.overhead_us, base.overhead_us);
        assert_eq!(
            p.profile.rates[OpClass::Sample.index()],
            base.rates[OpClass::Sample.index()]
        );
        // Custom edge personas show up as targets.
        assert!(reg.edge_targets().any(|q| q.name == "office-tx2"));
    }

    #[test]
    fn spec_errors_name_the_problem() {
        assert!(matches!(
            parse_spec("base = jetson-tx2"),
            Err(PersonaError::Spec(m)) if m.contains("name")
        ));
        assert!(matches!(
            parse_spec("name = x"),
            Err(PersonaError::Spec(m)) if m.contains("base")
        ));
        assert!(matches!(
            parse_spec("name = x\nbase = gba"),
            Err(PersonaError::Spec(m)) if m.contains("unknown base")
        ));
        assert!(matches!(
            parse_spec("name = x\nbase = v100\ncombine = 1.0"),
            Err(PersonaError::Spec(m)) if m.contains("GFLOP")
        ));
        assert!(matches!(
            parse_spec("name = x\nbase = v100\nfrobnicate = 1.0"),
            Err(PersonaError::Spec(m)) if m.contains("unknown key")
        ));
    }

    #[test]
    fn calibration_recovers_a_uniformly_scaled_device() {
        // "Real" board: a TX2 running 2.5x slower across the board.
        let base = DeviceKind::JetsonTx2.profile();
        let truth_scale = 2.5;
        let samples: Vec<CalibrationSample> = [128usize, 256, 384, 512]
            .iter()
            .map(|&n| {
                let w = probe(n);
                let measured_ms = base.execute(&w).latency_ms * truth_scale;
                CalibrationSample {
                    workload: w,
                    measured_ms,
                }
            })
            .collect();
        let persona = calibrate("slow-tx2", &base, &samples).expect("fit");
        assert_eq!(persona.base_kind(), DeviceKind::JetsonTx2);
        // Held-out workload: prediction within 1% of the scaled truth.
        let held_out = probe(768);
        let predicted = persona.profile.execute(&held_out).latency_ms;
        let truth = base.execute(&held_out).latency_ms * truth_scale;
        assert!(
            (predicted / truth - 1.0).abs() < 0.01,
            "predicted {predicted} vs truth {truth}"
        );
    }

    #[test]
    fn calibration_fits_noisy_measurements_unbiased() {
        let base = DeviceKind::RaspberryPi3B.profile();
        let mut rng = StdRng::seed_from_u64(7);
        let scale = 1.6;
        let samples: Vec<CalibrationSample> = (0..24)
            .map(|i| {
                let w = probe(96 + 32 * (i % 6));
                let mut slow = base.clone();
                for r in &mut slow.rates {
                    r.gflops /= scale;
                    r.gbps /= scale;
                }
                slow.overhead_us *= scale;
                let measured_ms = slow.measure(&w, &mut rng).unwrap().latency_ms;
                CalibrationSample {
                    workload: w,
                    measured_ms,
                }
            })
            .collect();
        let persona = calibrate("noisy-pi", &base, &samples).expect("fit");
        let w = probe(320);
        let predicted = persona.profile.execute(&w).latency_ms;
        let truth = base.execute(&w).latency_ms * scale;
        assert!(
            (predicted / truth - 1.0).abs() < 0.1,
            "predicted {predicted} vs truth {truth}"
        );
    }

    #[test]
    fn calibration_rejects_garbage() {
        let base = DeviceKind::V100.profile();
        assert!(calibrate("x", &base, &[]).is_err());
        let bad = [CalibrationSample {
            workload: probe(64),
            measured_ms: f64::NAN,
        }];
        assert!(calibrate("x", &base, &bad).is_err());
    }

    #[test]
    fn collect_samples_skips_transient_failures() {
        let base = DeviceKind::JetsonTx2.profile();
        let workloads: Vec<Workload> = [64usize, 96, 128].iter().map(|&n| probe(n)).collect();
        let mut calls = 0;
        let samples = collect_samples(&workloads, |w| {
            calls += 1;
            if calls == 2 {
                Err(MeasureError::Busy { retry_in_ms: 10.0 })
            } else {
                Ok(base.execute(w).latency_ms)
            }
        })
        .expect("busy is skipped");
        assert_eq!(samples.len(), 2);
    }
}
