//! The workload IR: what a lowered GNN architecture looks like to a device.

/// The paper's execution-time breakdown buckets (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Graph construction: KNN / random sampling.
    Sample,
    /// Message construction (gather/concat) and neighbour reduction.
    Aggregate,
    /// Dense feature transforms (per-node or per-edge MLPs).
    Combine,
    /// Everything else: pooling, elementwise, framework glue.
    Other,
}

impl OpClass {
    /// All classes in breakdown-display order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Sample,
        OpClass::Aggregate,
        OpClass::Combine,
        OpClass::Other,
    ];

    /// Index into per-class rate tables.
    pub fn index(self) -> usize {
        match self {
            OpClass::Sample => 0,
            OpClass::Aggregate => 1,
            OpClass::Combine => 2,
            OpClass::Other => 3,
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::Sample => "sample",
            OpClass::Aggregate => "aggregate",
            OpClass::Combine => "combine",
            OpClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// One lowered operation with its resource demands.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOp {
    /// Human-readable name for profiler output.
    pub name: String,
    /// Breakdown bucket.
    pub class: OpClass,
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved (reads + writes), access pattern folded into the class.
    pub bytes: f64,
    /// Transient workspace allocated while the op runs.
    pub workspace_bytes: f64,
    /// Output buffer that stays live until consumed downstream.
    pub output_bytes: f64,
}

impl WorkloadOp {
    /// KNN graph construction over `n` points with fanout `k` in a `c`-
    /// dimensional feature space: a pairwise distance pass (`n²·2c` FLOPs)
    /// plus top-k selection. The distance matrix is transient workspace; the
    /// `n*k` index table is the output. DGCNN recomputes this *in feature
    /// space* every layer, which is why `c` matters.
    pub fn knn(name: &str, n: usize, k: usize, c: usize) -> Self {
        let n = n as f64;
        let k = k as f64;
        let c = c as f64;
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Sample,
            flops: n * n * (2.0 * c + 8.0),
            bytes: n * n * 4.0 + n * c * 4.0 + n * k * 8.0,
            workspace_bytes: n * n * 4.0,
            output_bytes: n * k * 8.0,
        }
    }

    /// Random neighbour sampling: `n*k` draws, no distance pass.
    pub fn random_sample(name: &str, n: usize, k: usize) -> Self {
        let n = n as f64;
        let k = k as f64;
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Sample,
            flops: n * k * 4.0,
            bytes: n * k * 8.0,
            workspace_bytes: 0.0,
            output_bytes: n * k * 8.0,
        }
    }

    /// Message construction: gathers neighbour rows and assembles the
    /// `[n*k, c_msg]` edge tensor (irregular traffic).
    pub fn gather(name: &str, n: usize, k: usize, c_msg: usize) -> Self {
        let rows = (n * k) as f64;
        let c = c_msg as f64;
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Aggregate,
            flops: rows * c,
            bytes: rows * c * 8.0,
            workspace_bytes: rows * c * 4.0,
            output_bytes: rows * c * 4.0,
        }
    }

    /// Fused message construction + reduction, the execution pattern of an
    /// aggregate *without* an interposed per-edge MLP: one scatter-style
    /// kernel reads the `c_in`-wide source features, forms each message on
    /// the fly and accumulates straight into the `[n, c_msg]` output — the
    /// `[n*k, c_msg]` edge tensor is never materialised. This is precisely
    /// the cost asymmetry that lets HGNAS-designed models beat DGCNN, whose
    /// edge MLP forces materialisation (see [`WorkloadOp::gather`]).
    pub fn fused_aggregate(name: &str, n: usize, k: usize, c_in: usize, c_msg: usize) -> Self {
        let rows = (n * k) as f64;
        let (ci, cm) = (c_in as f64, c_msg as f64);
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Aggregate,
            flops: rows * cm * 2.0,
            bytes: rows * ci * 4.0 + n as f64 * cm * 4.0,
            workspace_bytes: 0.0,
            output_bytes: n as f64 * cm * 4.0,
        }
    }

    /// Neighbour reduction `[n*k, c] -> [n, c]` (sum/mean/max/min all cost
    /// the same to first order).
    pub fn reduce(name: &str, n: usize, k: usize, c: usize) -> Self {
        let rows = (n * k) as f64;
        let cf = c as f64;
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Aggregate,
            flops: rows * cf,
            bytes: rows * cf * 4.0 + n as f64 * cf * 4.0,
            workspace_bytes: 0.0,
            output_bytes: n as f64 * cf * 4.0,
        }
    }

    /// Dense linear transform over `rows` feature rows.
    pub fn linear(name: &str, rows: usize, c_in: usize, c_out: usize) -> Self {
        let r = rows as f64;
        let (ci, co) = (c_in as f64, c_out as f64);
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Combine,
            flops: 2.0 * r * ci * co,
            bytes: (r * (ci + co) + ci * co) * 4.0,
            workspace_bytes: 0.0,
            output_bytes: r * co * 4.0,
        }
    }

    /// Elementwise op (activation, residual add) over `rows × c`.
    pub fn elementwise(name: &str, rows: usize, c: usize) -> Self {
        let sz = (rows * c) as f64;
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Other,
            flops: sz,
            bytes: sz * 8.0,
            workspace_bytes: 0.0,
            output_bytes: sz * 4.0,
        }
    }

    /// Global pooling `[n, c] -> [1, c]`.
    pub fn global_pool(name: &str, n: usize, c: usize) -> Self {
        let sz = (n * c) as f64;
        WorkloadOp {
            name: name.to_string(),
            class: OpClass::Other,
            flops: sz,
            bytes: sz * 4.0,
            workspace_bytes: 0.0,
            output_bytes: c as f64 * 4.0,
        }
    }
}

/// A lowered architecture: the op sequence plus memory-plan summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    /// Ops in execution order.
    pub ops: Vec<WorkloadOp>,
    /// Peak of the live-buffer set over the schedule, in bytes (computed by
    /// the lowering pass, which knows buffer lifetimes).
    pub peak_live_bytes: f64,
    /// Model parameter bytes (resident for the whole run).
    pub param_bytes: f64,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Workload::default()
    }

    /// Appends an op and folds its buffers into a conservative running
    /// memory estimate (current output + workspace + previous output). The
    /// lowering pass may overwrite [`Workload::peak_live_bytes`] with an
    /// exact liveness plan.
    pub fn push(&mut self, op: WorkloadOp) {
        let prev_out = self.ops.last().map_or(0.0, |o| o.output_bytes);
        let live = prev_out + op.workspace_bytes + op.output_bytes;
        if live > self.peak_live_bytes {
            self.peak_live_bytes = live;
        }
        self.ops.push(op);
    }

    /// Total FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.ops.iter().map(|o| o.bytes).sum()
    }

    /// Op count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_scales_quadratically() {
        let a = WorkloadOp::knn("a", 512, 20, 3);
        let b = WorkloadOp::knn("b", 1024, 20, 3);
        assert!((b.flops / a.flops - 4.0).abs() < 0.01);
    }

    #[test]
    fn linear_flops_formula() {
        let op = WorkloadOp::linear("l", 100, 64, 128);
        assert_eq!(op.flops, 2.0 * 100.0 * 64.0 * 128.0);
        assert_eq!(op.class, OpClass::Combine);
    }

    #[test]
    fn workload_totals_accumulate() {
        let mut w = Workload::new();
        w.push(WorkloadOp::knn("k", 128, 10, 3));
        w.push(WorkloadOp::linear("l", 128, 3, 16));
        assert_eq!(w.len(), 2);
        assert!(w.total_flops() > 0.0);
        assert!(w.peak_live_bytes > 0.0);
    }

    #[test]
    fn push_tracks_running_peak() {
        let mut w = Workload::new();
        w.push(WorkloadOp::linear("big", 10_000, 256, 256));
        let peak_after_big = w.peak_live_bytes;
        w.push(WorkloadOp::linear("small", 10, 4, 4));
        // The small op keeps the big output live, so the peak can only grow
        // by the small op's own buffers.
        assert!(w.peak_live_bytes >= peak_after_big);
        assert!(w.peak_live_bytes < peak_after_big * 1.01);
    }

    #[test]
    fn class_indices_are_stable() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
