//! Device profiles: the four paper platforms plus the V100 search host.

use crate::workload::OpClass;

/// The edge platforms evaluated in the paper, plus the Nvidia V100 the
/// search itself runs on (used for search-time accounting in Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Nvidia RTX3080 desktop GPU (350 W).
    Rtx3080,
    /// Intel i7-8700K desktop CPU (95 W).
    I78700K,
    /// Nvidia Jetson TX2 embedded GPU (7.5 W).
    JetsonTx2,
    /// Raspberry Pi 3B+ (1 GB RAM, 5 W).
    RaspberryPi3B,
    /// Nvidia V100 — the search/training host, not an evaluation target.
    V100,
}

impl DeviceKind {
    /// The four edge evaluation targets, in the paper's presentation order.
    pub const EDGE_TARGETS: [DeviceKind; 4] = [
        DeviceKind::Rtx3080,
        DeviceKind::I78700K,
        DeviceKind::JetsonTx2,
        DeviceKind::RaspberryPi3B,
    ];

    /// Every modelled device (edge targets plus the V100 host), in a stable
    /// order — [`DeviceKind::index`] is the position here, which binary
    /// artifact codecs rely on staying fixed.
    pub const ALL: [DeviceKind; 5] = [
        DeviceKind::Rtx3080,
        DeviceKind::I78700K,
        DeviceKind::JetsonTx2,
        DeviceKind::RaspberryPi3B,
        DeviceKind::V100,
    ];

    /// Stable index into [`DeviceKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).unwrap()
    }

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Rtx3080 => "RTX3080",
            DeviceKind::I78700K => "i7-8700K",
            DeviceKind::JetsonTx2 => "Jetson TX2",
            DeviceKind::RaspberryPi3B => "Raspberry Pi",
            DeviceKind::V100 => "V100",
        }
    }

    /// The calibrated profile for this device.
    pub fn profile(self) -> DeviceProfile {
        DeviceProfile::builtin(self)
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Effective throughputs for one [`OpClass`] on one device.
///
/// These are *achieved* rates under a PyG-style runtime (framework overhead
/// included), not datasheet peaks, which is why e.g. the RTX3080's sample
/// rate is ~1.6 GFLOP/s: top-k selection parallelises poorly on GPUs, the
/// effect Observation ③ in the paper is about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassRates {
    /// Effective compute throughput, GFLOP/s.
    pub gflops: f64,
    /// Effective memory bandwidth for this class's access pattern, GB/s.
    pub gbps: f64,
}

/// A calibrated device model. See the crate docs for the calibration story.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Which device this models.
    pub kind: DeviceKind,
    /// Per-class effective rates, indexed by [`OpClass::index`].
    pub rates: [ClassRates; 4],
    /// Fixed per-op dispatch overhead, microseconds (kernel launch, Python
    /// glue).
    pub overhead_us: f64,
    /// Resident runtime footprint, MB (framework + context).
    pub base_mem_mb: f64,
    /// Allocator amplification applied to live model buffers.
    pub mem_factor: f64,
    /// Memory available to the process, MB; exceeding it is OOM.
    pub avail_mem_mb: f64,
    /// Multiplicative log-normal-ish measurement noise σ (the Pi is far
    /// noisier, per Fig. 8).
    pub noise_sigma: f64,
    /// Per-measurement deployment/communication round-trip, ms (drives the
    /// real-time-measurement search cost in Fig. 9a).
    pub measurement_roundtrip_ms: f64,
    /// Board power, watts (the paper's 47× power-efficiency claim).
    pub power_w: f64,
}

impl DeviceProfile {
    /// Returns the calibrated built-in profile for `kind`.
    pub fn builtin(kind: DeviceKind) -> Self {
        // Rates order: [Sample, Aggregate, Combine, Other].
        match kind {
            DeviceKind::Rtx3080 => DeviceProfile {
                kind,
                rates: [
                    ClassRates {
                        gflops: 22.0,
                        gbps: 500.0,
                    },
                    ClassRates {
                        gflops: 1000.0,
                        gbps: 8.0,
                    },
                    ClassRates {
                        gflops: 1850.0,
                        gbps: 400.0,
                    },
                    ClassRates {
                        gflops: 50.0,
                        gbps: 30.0,
                    },
                ],
                overhead_us: 120.0,
                base_mem_mb: 100.0,
                mem_factor: 1.0,
                avail_mem_mb: 10_000.0,
                noise_sigma: 0.03,
                measurement_roundtrip_ms: 1_500.0,
                power_w: 350.0,
            },
            DeviceKind::I78700K => DeviceProfile {
                kind,
                rates: [
                    ClassRates {
                        gflops: 8.2,
                        gbps: 30.0,
                    },
                    ClassRates {
                        gflops: 60.0,
                        gbps: 0.96,
                    },
                    ClassRates {
                        gflops: 300.0,
                        gbps: 25.0,
                    },
                    ClassRates {
                        gflops: 8.0,
                        gbps: 10.0,
                    },
                ],
                overhead_us: 350.0,
                base_mem_mb: 350.0,
                mem_factor: 6.5,
                avail_mem_mb: 32_000.0,
                noise_sigma: 0.03,
                measurement_roundtrip_ms: 2_000.0,
                power_w: 95.0,
            },
            DeviceKind::JetsonTx2 => DeviceProfile {
                kind,
                rates: [
                    ClassRates {
                        gflops: 4.4,
                        gbps: 20.0,
                    },
                    ClassRates {
                        gflops: 120.0,
                        gbps: 6.5,
                    },
                    ClassRates {
                        gflops: 330.0,
                        gbps: 40.0,
                    },
                    ClassRates {
                        gflops: 4.0,
                        gbps: 1.43,
                    },
                ],
                overhead_us: 1_500.0,
                base_mem_mb: 100.0,
                mem_factor: 1.0,
                avail_mem_mb: 8_000.0,
                noise_sigma: 0.04,
                measurement_roundtrip_ms: 4_000.0,
                power_w: 7.5,
            },
            DeviceKind::RaspberryPi3B => DeviceProfile {
                kind,
                rates: [
                    ClassRates {
                        gflops: 0.435,
                        gbps: 1.2,
                    },
                    ClassRates {
                        gflops: 3.0,
                        gbps: 0.16,
                    },
                    ClassRates {
                        gflops: 4.1,
                        gbps: 1.5,
                    },
                    ClassRates {
                        gflops: 0.35,
                        gbps: 0.16,
                    },
                ],
                overhead_us: 15_000.0,
                base_mem_mb: 140.0,
                mem_factor: 7.05,
                avail_mem_mb: 750.0,
                noise_sigma: 0.15,
                measurement_roundtrip_ms: 8_000.0,
                power_w: 5.0,
            },
            DeviceKind::V100 => DeviceProfile {
                kind,
                rates: [
                    ClassRates {
                        gflops: 28.0,
                        gbps: 600.0,
                    },
                    ClassRates {
                        gflops: 1200.0,
                        gbps: 10.0,
                    },
                    ClassRates {
                        gflops: 2500.0,
                        gbps: 500.0,
                    },
                    ClassRates {
                        gflops: 60.0,
                        gbps: 40.0,
                    },
                ],
                overhead_us: 100.0,
                base_mem_mb: 900.0,
                mem_factor: 1.0,
                avail_mem_mb: 32_000.0,
                noise_sigma: 0.02,
                measurement_roundtrip_ms: 500.0,
                power_w: 300.0,
            },
        }
    }

    /// Rates for a class.
    pub fn rates_for(&self, class: OpClass) -> ClassRates {
        self.rates[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_positive() {
        for kind in [
            DeviceKind::Rtx3080,
            DeviceKind::I78700K,
            DeviceKind::JetsonTx2,
            DeviceKind::RaspberryPi3B,
            DeviceKind::V100,
        ] {
            let p = kind.profile();
            for r in &p.rates {
                assert!(r.gflops > 0.0 && r.gbps > 0.0, "{kind}");
            }
            assert!(p.overhead_us >= 0.0 && p.avail_mem_mb > 0.0);
        }
    }

    #[test]
    fn pi_is_weakest_at_dense_compute() {
        let pi = DeviceKind::RaspberryPi3B.profile();
        for other in [
            DeviceKind::Rtx3080,
            DeviceKind::I78700K,
            DeviceKind::JetsonTx2,
        ] {
            assert!(
                pi.rates_for(OpClass::Combine).gflops
                    < other.profile().rates_for(OpClass::Combine).gflops
            );
        }
    }

    #[test]
    fn pi_has_least_memory_and_most_noise() {
        let pi = DeviceKind::RaspberryPi3B.profile();
        for other in DeviceKind::EDGE_TARGETS
            .iter()
            .filter(|&&k| k != DeviceKind::RaspberryPi3B)
        {
            assert!(pi.avail_mem_mb < other.profile().avail_mem_mb);
            assert!(pi.noise_sigma > other.profile().noise_sigma);
        }
    }

    #[test]
    fn power_matches_paper_claims() {
        // The paper's 47x claim: 350 W (RTX3080) vs 7.5 W (TX2).
        let ratio = DeviceKind::Rtx3080.profile().power_w / DeviceKind::JetsonTx2.profile().power_w;
        assert!((ratio - 46.67).abs() < 1.0);
    }
}
