//! Workload execution: latency, breakdown, peak memory, noisy measurement.

use crate::profiles::DeviceProfile;
use crate::workload::Workload;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The simulator's answer for one workload on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// End-to-end inference latency, milliseconds.
    pub latency_ms: f64,
    /// Latency split by op class, milliseconds, indexed by
    /// [`crate::OpClass::index`].
    pub breakdown_ms: [f64; 4],
    /// Peak resident memory, MB.
    pub peak_mem_mb: f64,
    /// Whether peak memory exceeded the device's available memory.
    pub oom: bool,
}

impl ExecutionReport {
    /// Inference energy at a given board power, millijoules. The analytical
    /// model treats board power as constant over the inference window
    /// (`W × ms = mJ`), which is what the paper's power-efficiency
    /// comparison does too — energy objectives cost this against a
    /// same-device reference, so the constant-power approximation cancels.
    pub fn energy_mj(&self, power_w: f64) -> f64 {
        power_w * self.latency_ms
    }

    /// Breakdown as fractions of total latency.
    pub fn breakdown_fractions(&self) -> [f64; 4] {
        let mut f = [0.0; 4];
        if self.latency_ms > 0.0 {
            for (frac, ms) in f.iter_mut().zip(&self.breakdown_ms) {
                *frac = ms / self.latency_ms;
            }
        }
        f
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ms (sample {:.1}%, aggregate {:.1}%, combine {:.1}%, other {:.1}%), peak {:.1} MB{}",
            self.latency_ms,
            self.breakdown_fractions()[0] * 100.0,
            self.breakdown_fractions()[1] * 100.0,
            self.breakdown_fractions()[2] * 100.0,
            self.breakdown_fractions()[3] * 100.0,
            self.peak_mem_mb,
            if self.oom { " [OOM]" } else { "" }
        )
    }
}

/// Failure modes of a (simulated) on-device measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// The model did not fit in device memory.
    OutOfMemory {
        /// Peak the workload would have needed, MB.
        needed_mb: f64,
        /// What the device offers, MB.
        avail_mb: f64,
    },
    /// The board (or its link) was transiently unavailable — the real-world
    /// failure a measurement harness retries with backoff. The deterministic
    /// simulator never produces this on its own; measurement *services*
    /// inject it to model deployment-channel contention.
    Busy {
        /// Suggested wait before retrying, milliseconds.
        retry_in_ms: f64,
    },
}

impl MeasureError {
    /// Whether retrying the measurement can ever succeed. Out-of-memory is a
    /// property of the workload and device, so retries are futile; a busy
    /// board clears up.
    pub fn is_transient(&self) -> bool {
        match self {
            MeasureError::OutOfMemory { .. } => false,
            MeasureError::Busy { .. } => true,
        }
    }
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::OutOfMemory {
                needed_mb,
                avail_mb,
            } => write!(
                f,
                "out of memory: needs {needed_mb:.0} MB, device has {avail_mb:.0} MB"
            ),
            MeasureError::Busy { retry_in_ms } => {
                write!(f, "device busy: retry in {retry_in_ms:.0} ms")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

impl DeviceProfile {
    /// Deterministic (noise-free) execution model: roofline per op plus
    /// dispatch overhead, liveness-based peak memory.
    pub fn execute(&self, w: &Workload) -> ExecutionReport {
        let mut breakdown_ms = [0.0f64; 4];
        for op in &w.ops {
            let r = self.rates_for(op.class);
            let compute_ms = op.flops / (r.gflops * 1e9) * 1e3;
            let memory_ms = op.bytes / (r.gbps * 1e9) * 1e3;
            let t = compute_ms.max(memory_ms) + self.overhead_us / 1e3;
            breakdown_ms[op.class.index()] += t;
        }
        let latency_ms: f64 = breakdown_ms.iter().sum();
        let peak_mem_mb =
            self.base_mem_mb + self.mem_factor * (w.peak_live_bytes + w.param_bytes) / 1e6;
        ExecutionReport {
            latency_ms,
            breakdown_ms,
            peak_mem_mb,
            oom: peak_mem_mb > self.avail_mem_mb,
        }
    }

    /// Simulated *measurement*: the deterministic model perturbed by the
    /// device's multiplicative noise. This is what predictor training labels
    /// come from (substitution S4), and what the real-time-measurement
    /// search mode consumes.
    ///
    /// # Errors
    ///
    /// Returns [`MeasureError::OutOfMemory`] when the workload does not fit,
    /// mirroring what deployment on the real board would do.
    pub fn measure<R: Rng>(
        &self,
        w: &Workload,
        rng: &mut R,
    ) -> Result<ExecutionReport, MeasureError> {
        let mut report = self.execute(w);
        if report.oom {
            return Err(MeasureError::OutOfMemory {
                needed_mb: report.peak_mem_mb,
                avail_mb: self.avail_mem_mb,
            });
        }
        // Sum of 12 uniforms ≈ N(0,1); multiplicative, floored at 3σ below.
        let gauss: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
        let factor = (1.0 + self.noise_sigma * gauss)
            .max(1.0 - 3.0 * self.noise_sigma)
            .max(0.05);
        report.latency_ms *= factor;
        for b in &mut report.breakdown_ms {
            *b *= factor;
        }
        Ok(report)
    }

    /// Oracle-facing measurement entry point: measures under a private RNG
    /// stream derived from `stream`, so a measurement service can give every
    /// request its own deterministic noise stream (keyed by request id)
    /// without threading generator state through its queues.
    ///
    /// # Errors
    ///
    /// Same contract as [`DeviceProfile::measure`].
    pub fn measure_seeded(
        &self,
        w: &Workload,
        stream: u64,
    ) -> Result<ExecutionReport, MeasureError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(stream);
        self.measure(w, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceKind;
    use crate::workload::{Workload, WorkloadOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_workload(n: usize) -> Workload {
        let mut w = Workload::new();
        w.push(WorkloadOp::knn("knn", n, 20, 3));
        w.push(WorkloadOp::gather("gather", n, 20, 64));
        w.push(WorkloadOp::linear("mlp", n * 20, 64, 64));
        w.push(WorkloadOp::reduce("max", n, 20, 64));
        w.push(WorkloadOp::global_pool("pool", n, 64));
        w
    }

    #[test]
    fn latency_monotone_in_problem_size() {
        for kind in DeviceKind::EDGE_TARGETS {
            let p = kind.profile();
            let small = p.execute(&toy_workload(256)).latency_ms;
            let big = p.execute(&toy_workload(1024)).latency_ms;
            assert!(big > small, "{kind}: {big} <= {small}");
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = DeviceKind::Rtx3080.profile();
        let r = p.execute(&toy_workload(512));
        let sum: f64 = r.breakdown_ms.iter().sum();
        assert!((sum - r.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn pi_slower_than_gpu() {
        let w = toy_workload(1024);
        let pi = DeviceKind::RaspberryPi3B.profile().execute(&w).latency_ms;
        let gpu = DeviceKind::Rtx3080.profile().execute(&w).latency_ms;
        assert!(pi > 10.0 * gpu, "pi {pi} vs gpu {gpu}");
    }

    #[test]
    fn oom_reported_as_error() {
        let mut w = Workload::new();
        w.push(WorkloadOp::linear("huge", 4_000_000, 256, 256));
        w.peak_live_bytes = 4e9;
        let p = DeviceKind::RaspberryPi3B.profile();
        let mut rng = StdRng::seed_from_u64(0);
        match p.measure(&w, &mut rng) {
            Err(MeasureError::OutOfMemory {
                needed_mb,
                avail_mb,
            }) => {
                assert!(needed_mb > avail_mb);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn measurement_noise_has_expected_spread() {
        let p = DeviceKind::RaspberryPi3B.profile();
        let w = toy_workload(256);
        let clean = p.execute(&w).latency_ms;
        let mut rng = StdRng::seed_from_u64(1);
        let n = 300;
        let samples: Vec<f64> = (0..n)
            .map(|_| p.measure(&w, &mut rng).unwrap().latency_ms)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64).sqrt();
        assert!(
            (mean / clean - 1.0).abs() < 0.05,
            "mean drift {}",
            mean / clean
        );
        let rel_sd = sd / clean;
        assert!(
            (rel_sd - p.noise_sigma).abs() < 0.05,
            "relative sd {rel_sd} vs sigma {}",
            p.noise_sigma
        );
    }

    #[test]
    fn measure_seeded_matches_equally_seeded_measure() {
        let p = DeviceKind::JetsonTx2.profile();
        let w = toy_workload(256);
        let mut rng = StdRng::seed_from_u64(0xfeed);
        let inline = p.measure(&w, &mut rng).unwrap();
        let seeded = p.measure_seeded(&w, 0xfeed).unwrap();
        assert_eq!(inline, seeded);
        // Distinct streams give distinct noise.
        let other = p.measure_seeded(&w, 0xfeed + 1).unwrap();
        assert_ne!(seeded.latency_ms.to_bits(), other.latency_ms.to_bits());
    }

    #[test]
    fn transiency_classification() {
        let oom = MeasureError::OutOfMemory {
            needed_mb: 2048.0,
            avail_mb: 1024.0,
        };
        let busy = MeasureError::Busy { retry_in_ms: 50.0 };
        assert!(!oom.is_transient());
        assert!(busy.is_transient());
        assert!(busy.to_string().contains("retry"));
    }

    #[test]
    fn noise_free_execute_is_deterministic() {
        let p = DeviceKind::JetsonTx2.profile();
        let w = toy_workload(300);
        assert_eq!(p.execute(&w), p.execute(&w));
    }
}
