//! Criterion benches over the system pipeline: model forward passes, the
//! device simulator, predictor inference (the paper's "milliseconds per
//! candidate" claim) and EA throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hgnas_autograd::Tape;
use hgnas_core::{evolve, EaConfig};
use hgnas_device::DeviceKind;
use hgnas_ops::{dgcnn, lower_edgeconv, Architecture, DgcnnConfig};
use hgnas_pointcloud::{DatasetConfig, SynthNet40};
use hgnas_predictor::{LatencyPredictor, PredictorConfig, PredictorContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_edgeconv_forward(c: &mut Criterion) {
    let ds = SynthNet40::generate(&DatasetConfig::tiny(1));
    let batch = SynthNet40::batches(&ds.train[..4], 4).remove(0);
    let mut rng = StdRng::seed_from_u64(1);
    let model = dgcnn(&mut rng, DgcnnConfig::small(ds.classes));
    c.bench_function("edgeconv_forward_4x48pts", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut rng = StdRng::seed_from_u64(2);
            black_box(model.forward(&mut tape, black_box(&batch), &mut rng))
        })
    });
}

fn bench_device_sim(c: &mut Criterion) {
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let profile = DeviceKind::RaspberryPi3B.profile();
    c.bench_function("device_sim_dgcnn_1024", |b| {
        b.iter(|| black_box(profile.execute(black_box(&w))))
    });
}

fn bench_lowering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let arch = Architecture::random(&mut rng, 12, 20, 40);
    c.bench_function("lower_arch_12pos", |b| {
        b.iter(|| black_box(black_box(&arch).lower(1024, &[128])))
    });
}

fn bench_predictor_inference(c: &mut Criterion) {
    let ctx = PredictorContext {
        positions: 12,
        points: 1024,
        k: 20,
        classes: 40,
        head_hidden: vec![128],
    };
    let cfg = PredictorConfig {
        train_samples: 60,
        val_samples: 20,
        epochs: 3,
        lr: 3e-3,
        gcn_dims: vec![48, 48],
        mlp_hidden: vec![32],
        seed: 4,
        global_node: true,
        batch: 1,
    };
    let (predictor, _) = LatencyPredictor::train(DeviceKind::Rtx3080, &ctx, &cfg);
    let mut rng = StdRng::seed_from_u64(5);
    let arch = Architecture::random(&mut rng, 12, 20, 40);
    // The paper's claim: latency perception per candidate in milliseconds.
    c.bench_function("predictor_query_12pos", |b| {
        b.iter(|| black_box(predictor.predict_ms(black_box(&arch))))
    });
}

fn bench_ea(c: &mut Criterion) {
    c.bench_function("ea_onemax_pop16x30", |b| {
        b.iter(|| {
            evolve(
                vec![0u32],
                &EaConfig {
                    population: 16,
                    iterations: 30,
                    elite_fraction: 0.4,
                    mutation_prob: 0.8,
                    seed: 6,
                },
                |g| g.count_ones() as f64,
                |g, rng| g ^ (1 << rng.gen_range(0..32)),
                |a, b2, rng| {
                    let mask: u32 = rng.gen();
                    (a & mask) | (b2 & !mask)
                },
            )
            .best_fitness
        })
    });
}

criterion_group!(
    benches,
    bench_edgeconv_forward,
    bench_device_sim,
    bench_lowering,
    bench_predictor_inference,
    bench_ea
);
criterion_main!(benches);
