//! Serial vs. parallel candidate evaluation on one EA generation.
//!
//! Scores a 16-candidate generation through the memoising `Evaluator` at
//! increasing thread budgets (cold cache), plus the fully-memoised path.
//! The per-candidate work is the real Stage-2 hot path: a one-shot
//! supernet accuracy evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hgnas_core::{CandidateScorer, Evaluator, Supernet, TaskConfig};
use hgnas_ops::{FunctionSet, OpType};
use hgnas_pointcloud::{PointCloud, SynthNet40};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct AccuracyScorer<'a> {
    supernet: &'a Supernet,
    clouds: &'a [PointCloud],
}

impl CandidateScorer<Vec<OpType>> for AccuracyScorer<'_> {
    type Output = f64;

    fn score(&self, genome: &Vec<OpType>, _rng: &mut StdRng) -> f64 {
        self.supernet.eval_genome(genome, self.clouds, 0)
    }
}

fn distinct_genomes(sn: &Supernet, n: usize, seed: u64) -> Vec<Vec<OpType>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<OpType>> = Vec::with_capacity(n);
    while out.len() < n {
        let g = sn.random_genome(&mut rng);
        if !out.contains(&g) {
            out.push(g);
        }
    }
    out
}

fn bench_generation(c: &mut Criterion) {
    let task = TaskConfig::small(11);
    let ds = SynthNet40::generate(&task.dataset);
    let mut rng = StdRng::seed_from_u64(1);
    let sn = Supernet::new(
        &mut rng,
        task.positions,
        task.supernet_hidden,
        task.k,
        task.classes(),
        FunctionSet::dgcnn_like(64),
        FunctionSet::dgcnn_like(128),
        &task.head_hidden,
    );
    let clouds = &ds.test[..32.min(ds.test.len())];
    let genomes = distinct_genomes(&sn, 16, 2);

    let mut group = c.benchmark_group("evaluator/generation16");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &t| {
            b.iter(|| {
                // Fresh evaluator per iteration: every candidate is a cache
                // miss, so this measures raw scoring throughput.
                let mut ev = Evaluator::new(
                    AccuracyScorer {
                        supernet: &sn,
                        clouds,
                    },
                    t,
                    42,
                    |_: &Vec<OpType>, f: &f64, _| *f,
                );
                black_box(ev.evaluate_batch(&genomes))
            })
        });
    }
    group.bench_function("warm_cache", |b| {
        let mut ev = Evaluator::new(
            AccuracyScorer {
                supernet: &sn,
                clouds,
            },
            1,
            42,
            |_: &Vec<OpType>, f: &f64, _| *f,
        );
        ev.evaluate_batch(&genomes);
        b.iter(|| black_box(ev.evaluate_batch(&genomes)));
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
