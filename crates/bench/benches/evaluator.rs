//! Serial vs. parallel candidate evaluation on one EA generation.
//!
//! Scores a 16-candidate generation through the memoising `Evaluator` at
//! increasing thread budgets (cold cache), plus the fully-memoised path.
//! The per-candidate work is the real Stage-2 hot path: a one-shot
//! supernet accuracy evaluation.
//!
//! Besides the criterion sweep, the bench always writes a
//! machine-readable `BENCH_evaluator.json` (cold serial vs. cold 4-thread
//! vs. fully-memoised wall-clock) so CI can track the perf trajectory;
//! `HGNAS_BENCH_JSON=only` skips the sweep and emits just the record,
//! `HGNAS_BENCH_OUT` overrides the output path.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use hgnas_core::{CandidateScorer, Evaluator, Supernet, TaskConfig};
use hgnas_ops::{FunctionSet, OpType};
use hgnas_pointcloud::{PointCloud, SynthNet40};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct AccuracyScorer<'a> {
    supernet: &'a Supernet,
    clouds: &'a [PointCloud],
}

impl CandidateScorer<Vec<OpType>> for AccuracyScorer<'_> {
    type Output = f64;

    fn score(&self, genome: &Vec<OpType>, _rng: &mut StdRng) -> f64 {
        self.supernet.eval_genome(genome, self.clouds, 0)
    }
}

fn distinct_genomes(sn: &Supernet, n: usize, seed: u64) -> Vec<Vec<OpType>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<OpType>> = Vec::with_capacity(n);
    while out.len() < n {
        let g = sn.random_genome(&mut rng);
        if !out.contains(&g) {
            out.push(g);
        }
    }
    out
}

fn bench_generation(c: &mut Criterion) {
    let task = TaskConfig::small(11);
    let ds = SynthNet40::generate(&task.dataset);
    let mut rng = StdRng::seed_from_u64(1);
    let sn = Supernet::new(
        &mut rng,
        task.positions,
        task.supernet_hidden,
        task.k,
        task.classes(),
        FunctionSet::dgcnn_like(64),
        FunctionSet::dgcnn_like(128),
        &task.head_hidden,
    );
    let clouds = &ds.test[..32.min(ds.test.len())];
    let genomes = distinct_genomes(&sn, 16, 2);

    let mut group = c.benchmark_group("evaluator/generation16");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &t| {
            b.iter(|| {
                // Fresh evaluator per iteration: every candidate is a cache
                // miss, so this measures raw scoring throughput.
                let mut ev = Evaluator::new(
                    AccuracyScorer {
                        supernet: &sn,
                        clouds,
                    },
                    t,
                    42,
                    |_: &Vec<OpType>, f: &f64, _| *f,
                );
                black_box(ev.evaluate_batch(&genomes))
            })
        });
    }
    group.bench_function("warm_cache", |b| {
        let mut ev = Evaluator::new(
            AccuracyScorer {
                supernet: &sn,
                clouds,
            },
            1,
            42,
            |_: &Vec<OpType>, f: &f64, _| *f,
        );
        ev.evaluate_batch(&genomes);
        b.iter(|| black_box(ev.evaluate_batch(&genomes)));
    });
    group.finish();
}

/// Best-of-3 wall-clock of `f`, in milliseconds.
fn time_best_ms(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes the machine-readable perf record CI uploads: one 16-candidate
/// generation scored cold serially, cold at 4 threads, and fully memoised.
fn emit_bench_json() {
    let task = TaskConfig::small(11);
    let ds = SynthNet40::generate(&task.dataset);
    let mut rng = StdRng::seed_from_u64(1);
    let sn = Supernet::new(
        &mut rng,
        task.positions,
        task.supernet_hidden,
        task.k,
        task.classes(),
        FunctionSet::dgcnn_like(64),
        FunctionSet::dgcnn_like(128),
        &task.head_hidden,
    );
    let clouds = &ds.test[..32.min(ds.test.len())];
    let genomes = distinct_genomes(&sn, 16, 2);
    let cold = |threads: usize| {
        time_best_ms(|| {
            let mut ev = Evaluator::new(
                AccuracyScorer {
                    supernet: &sn,
                    clouds,
                },
                threads,
                42,
                |_: &Vec<OpType>, f: &f64, _| *f,
            );
            black_box(ev.evaluate_batch(&genomes));
        })
    };
    let (cold_serial_ms, cold_parallel4_ms) = (cold(1), cold(4));
    let mut warm_ev = Evaluator::new(
        AccuracyScorer {
            supernet: &sn,
            clouds,
        },
        1,
        42,
        |_: &Vec<OpType>, f: &f64, _| *f,
    );
    warm_ev.evaluate_batch(&genomes);
    let warm_cache_ms = time_best_ms(|| {
        black_box(warm_ev.evaluate_batch(&genomes));
    });
    let json = format!(
        "{{\n  \"bench\": \"evaluator/generation16\",\n  \"candidates\": {},\n  \
         \"cold_serial_ms\": {cold_serial_ms:.3},\n  \
         \"cold_parallel4_ms\": {cold_parallel4_ms:.3},\n  \
         \"warm_cache_ms\": {warm_cache_ms:.3},\n  \
         \"parallel_speedup\": {:.3}\n}}\n",
        genomes.len(),
        cold_serial_ms / cold_parallel4_ms.max(1e-9),
    );
    let path = std::env::var("HGNAS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_evaluator.json").into()
    });
    std::fs::write(&path, json).expect("write bench json");
    println!(
        "{path}: cold serial {cold_serial_ms:.0} ms, cold 4-thread {cold_parallel4_ms:.0} ms, \
         warm {warm_cache_ms:.3} ms"
    );
}

criterion_group!(benches, bench_generation);

fn main() {
    // HGNAS_BENCH_JSON=only skips the criterion sweep (CI's quick path);
    // the JSON record is emitted either way.
    let json_only = std::env::var("HGNAS_BENCH_JSON").is_ok_and(|v| v == "only");
    if !json_only {
        benches();
    }
    emit_bench_json();
}
