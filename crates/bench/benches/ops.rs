//! Criterion micro-benches plus a `BENCH_ops.json` record for the ops-level
//! hot path: the elementwise/activation kernels the autograd tape runs per
//! forward/backward, the gather/repeat message kernels, and the per-batch
//! KNN cache (a cold EdgeConv forward pays the O(n²) graph build, a warm
//! one reads it back).
//!
//! Like `benches/kernels.rs`, `HGNAS_BENCH_JSON=only` skips the criterion
//! sweep and emits just the record; `HGNAS_BENCH_OUT` overrides the output
//! path. `bench_diff` compares the record against the committed
//! `BENCH_ops.baseline.json`.

use criterion::{criterion_group, Criterion};
use hgnas_autograd::Tape;
use hgnas_bench::record::{emit_bench_json, json_only, time_both};
use hgnas_ops::{DgcnnConfig, EdgeConvModel};
use hgnas_pointcloud::{Batch, DatasetConfig, PointCloud, SynthNet40};
use hgnas_tensor::kernels::{gather_rows, repeat_rows};
use hgnas_tensor::simd;
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Clouds for the EdgeConv forward records: 8 × 128-point clouds, the
/// `small` dataset geometry the default harnesses train on.
fn clouds() -> Vec<PointCloud> {
    let ds = SynthNet40::generate(&DatasetConfig::small(3));
    ds.train[..8].to_vec()
}

fn stacked(clouds: &[PointCloud]) -> Batch {
    SynthNet40::batches(clouds, clouds.len()).remove(0)
}

fn bench_edgeconv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("edgeconv_forward");
    let clouds = clouds();
    let mut rng = StdRng::seed_from_u64(4);
    let model = EdgeConvModel::new(&mut rng, DgcnnConfig::small(10));
    group.bench_function("cold/8x128", |bch| {
        bch.iter(|| {
            // A fresh batch per iteration: its neighbor cache is empty, so
            // the forward pays the layer-0 KNN build.
            let batch = stacked(black_box(&clouds));
            let mut tape = Tape::new();
            black_box(model.forward(&mut tape, &batch, &mut rng));
        })
    });
    let warm = stacked(&clouds);
    group.bench_function("warm/8x128", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new();
            black_box(model.forward(&mut tape, black_box(&warm), &mut rng));
        })
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// scalar-vs-lane JSON record
// ---------------------------------------------------------------------------

fn emit_ops_json() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut entries: Vec<String> = Vec::new();

    // Elementwise/activation kernels at a lane-aligned and a ragged shape
    // (remainder schedule). The copy_from_slice reset is part of the timed
    // region on both paths, so ratios stay comparable.
    for &(r, cc) in &[(1024usize, 64usize), (999, 37)] {
        let shape = format!("{r}x{cc}");
        let n = r * cc;
        let x = Tensor::rand_uniform(&mut rng, &[r, cc], -2.0, 2.0);
        let y = Tensor::rand_uniform(&mut rng, &[r, cc], -2.0, 2.0);
        let mut buf = vec![0.0f32; n];
        entries.push(time_both("sub_assign", &shape, 9, || {
            buf.copy_from_slice(x.data());
            simd::sub_assign(black_box(&mut buf), black_box(y.data()));
        }));
        entries.push(time_both("mul_assign", &shape, 9, || {
            buf.copy_from_slice(x.data());
            simd::mul_assign(black_box(&mut buf), black_box(y.data()));
        }));
        entries.push(time_both("relu", &shape, 9, || {
            buf.copy_from_slice(x.data());
            simd::relu(black_box(&mut buf));
        }));
        entries.push(time_both("leaky_relu", &shape, 9, || {
            buf.copy_from_slice(x.data());
            simd::leaky_relu(black_box(&mut buf), 0.2);
        }));
        entries.push(time_both("relu_grad", &shape, 9, || {
            buf.copy_from_slice(y.data());
            simd::relu_grad(black_box(&mut buf), black_box(x.data()));
        }));
        entries.push(time_both("leaky_relu_grad", &shape, 9, || {
            buf.copy_from_slice(y.data());
            simd::leaky_relu_grad(black_box(&mut buf), black_box(x.data()), 0.2);
        }));
    }

    // Message-passing copy kernels (EdgeConv-style fanout: 1024 points,
    // k=20 neighbours, 64 channels). Pure copies — no lane leg, recorded
    // for the wall-clock trajectory.
    let t = Tensor::rand_uniform(&mut rng, &[1024, 64], -1.0, 1.0);
    let idx: Vec<usize> = (0..1024 * 20).map(|i| (i * 7) % 1024).collect();
    entries.push(time_both("gather_rows", "1024x64 k=20", 9, || {
        black_box(gather_rows(black_box(&t), black_box(&idx)));
    }));
    entries.push(time_both("repeat_rows", "1024x64 k=20", 9, || {
        black_box(repeat_rows(black_box(&t), 20));
    }));

    // The per-batch KNN cache: a cold forward builds the layer-0 graph, a
    // warm forward reads it back from the batch. The cold/warm lane-path
    // gap is the once-per-batch O(n²) KNN cost the cache amortises.
    let clouds = clouds();
    let mut rng = StdRng::seed_from_u64(4);
    let model = EdgeConvModel::new(&mut rng, DgcnnConfig::small(10));
    entries.push(time_both("edgeconv_forward_cold", "8x128", 5, || {
        let batch = stacked(black_box(&clouds));
        let mut tape = Tape::new();
        black_box(model.forward(&mut tape, &batch, &mut rng));
    }));
    let warm = stacked(&clouds);
    entries.push(time_both("edgeconv_forward_warm", "8x128", 5, || {
        let mut tape = Tape::new();
        black_box(model.forward(&mut tape, black_box(&warm), &mut rng));
    }));

    emit_bench_json("ops/scalar-vs-lane", "BENCH_ops.json", &entries);
}

criterion_group!(benches, bench_edgeconv_forward);

fn main() {
    // HGNAS_BENCH_JSON=only skips the criterion sweep (CI's quick path);
    // the JSON record is emitted either way.
    if !json_only() {
        benches();
    }
    emit_ops_json();
}
