//! Measurement-oracle throughput: inline measurement vs. asynchronous
//! pipelined submission through the per-device worker pool.
//!
//! The oracle's win is overlap: with W workers per device, a shard can
//! keep W measurements in flight while it scores other candidates. The
//! `pipelined` benchmarks submit a whole batch before collecting any
//! response; `inline` is the serial reference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hgnas_device::{DeviceKind, Workload, WorkloadOp};
use hgnas_fleet::{MeasurementOracle, OracleConfig, Ticket};

fn probe_workload() -> Workload {
    let mut w = Workload::new();
    w.push(WorkloadOp::knn("knn", 1024, 20, 3));
    w.push(WorkloadOp::gather("gather", 1024, 20, 64));
    w.push(WorkloadOp::linear("mlp", 1024 * 20, 64, 64));
    w.push(WorkloadOp::reduce("max", 1024, 20, 64));
    w
}

fn bench_oracle(c: &mut Criterion) {
    const REQUESTS: u64 = 64;
    let w = probe_workload();
    let device = DeviceKind::JetsonTx2;

    let mut group = c.benchmark_group("fleet/oracle64");
    group.bench_function("inline", |b| {
        let profile = device.profile();
        b.iter(|| {
            for i in 0..REQUESTS {
                black_box(profile.measure_seeded(&w, i).unwrap());
            }
        })
    });
    for workers in [1usize, 2, 4] {
        let cfg = OracleConfig {
            workers_per_device: workers,
            ..OracleConfig::default()
        };
        let oracle = MeasurementOracle::start(&[device], &cfg);
        let client = oracle.client(device);
        group.bench_with_input(BenchmarkId::new("pipelined", workers), &workers, |b, _| {
            b.iter(|| {
                let tickets: Vec<Ticket> =
                    (0..REQUESTS).map(|i| client.submit(w.clone(), i)).collect();
                for t in tickets {
                    black_box(t.wait().unwrap());
                }
            })
        });
        drop(client);
        oracle.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
