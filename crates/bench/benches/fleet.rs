//! Fleet-layer benchmarks: oracle throughput and scheduler shapes.
//!
//! - `fleet/oracle64`: inline measurement vs. asynchronous pipelined
//!   submission through the per-device worker pool. The oracle's win is
//!   overlap: with W workers per device, a shard can keep W measurements
//!   in flight while it scores other candidates.
//! - `fleet/scheduler`: one tiny 3-shard fleet searched under different
//!   scheduler shapes — the legacy thread-per-shard form vs. bounded
//!   thread budgets, unpreempted vs. generation-granular slicing. Results
//!   are bit-identical across shapes; this measures the scheduling
//!   overhead (slice replays of Stage 1 + supernet pre-training are the
//!   dominant cost of fine strides).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hgnas_core::{LatencyMode, SearchConfig, TaskConfig};
use hgnas_device::{DeviceKind, Workload, WorkloadOp};
use hgnas_fleet::{MeasurementOracle, OracleConfig, Scheduler, SchedulerConfig, ShardSpec, Ticket};
use hgnas_predictor::PredictorConfig;

fn probe_workload() -> Workload {
    let mut w = Workload::new();
    w.push(WorkloadOp::knn("knn", 1024, 20, 3));
    w.push(WorkloadOp::gather("gather", 1024, 20, 64));
    w.push(WorkloadOp::linear("mlp", 1024 * 20, 64, 64));
    w.push(WorkloadOp::reduce("max", 1024, 20, 64));
    w
}

fn bench_oracle(c: &mut Criterion) {
    const REQUESTS: u64 = 64;
    let w = probe_workload();
    let device = DeviceKind::JetsonTx2;

    let mut group = c.benchmark_group("fleet/oracle64");
    group.bench_function("inline", |b| {
        let profile = device.profile();
        b.iter(|| {
            for i in 0..REQUESTS {
                black_box(profile.measure_seeded(&w, i).unwrap());
            }
        })
    });
    for workers in [1usize, 2, 4] {
        let cfg = OracleConfig {
            workers_per_device: workers,
            ..OracleConfig::default()
        };
        let oracle = MeasurementOracle::start(&[device], &cfg);
        let client = oracle.client(device);
        group.bench_with_input(BenchmarkId::new("pipelined", workers), &workers, |b, _| {
            b.iter(|| {
                let tickets: Vec<Ticket> =
                    (0..REQUESTS).map(|i| client.submit(w.clone(), i)).collect();
                for t in tickets {
                    black_box(t.wait().unwrap());
                }
            })
        });
        drop(client);
        oracle.shutdown();
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let task = TaskConfig::tiny(3);
    let devices = [
        DeviceKind::Rtx3080,
        DeviceKind::JetsonTx2,
        DeviceKind::RaspberryPi3B,
    ];
    let specs: Vec<ShardSpec> = devices
        .iter()
        .map(|&device| {
            let mut cfg = SearchConfig::fast(device);
            cfg.ea_stage1.iterations = 1;
            cfg.ea_stage1.population = 3;
            cfg.ea_stage2.iterations = 3;
            cfg.ea_stage2.population = 6;
            cfg.epochs_stage1 = 1;
            cfg.epochs_stage2 = 2;
            cfg.predictor = PredictorConfig {
                train_samples: 40,
                val_samples: 15,
                epochs: 4,
                lr: 3e-3,
                gcn_dims: vec![16, 16],
                mlp_hidden: vec![12],
                seed: 1,
                global_node: true,
                batch: 2,
            };
            cfg.eval_clouds = 15;
            cfg.latency_mode = LatencyMode::Predictor;
            ShardSpec::new(task.clone(), cfg)
        })
        .collect();

    let mut group = c.benchmark_group("fleet/scheduler3");
    // (threads, stride): 0 threads = legacy one-worker-per-shard.
    for (threads, stride) in [(0usize, 0usize), (2, 0), (2, 1), (1, 1)] {
        let label = format!("t{threads}-s{stride}");
        group.bench_with_input(
            BenchmarkId::new("shape", label),
            &(threads, stride),
            |b, &(threads, stride)| {
                b.iter(|| {
                    let scheduler = Scheduler::new(
                        specs.clone(),
                        SchedulerConfig {
                            threads,
                            preemption_stride: stride,
                            ..SchedulerConfig::default()
                        },
                    );
                    black_box(scheduler.run(None, None).expect("storeless run"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oracle, bench_scheduler);
criterion_main!(benches);
