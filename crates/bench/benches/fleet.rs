//! Fleet-layer benchmarks: oracle throughput and scheduler shapes.
//!
//! - `fleet/oracle64`: inline measurement vs. asynchronous pipelined
//!   submission through the per-device worker pool. The oracle's win is
//!   overlap: with W workers per device, a shard can keep W measurements
//!   in flight while it scores other candidates.
//! - `fleet/scheduler`: one tiny 3-shard fleet searched under different
//!   scheduler shapes — the legacy thread-per-shard form vs. bounded
//!   thread budgets, unpreempted vs. generation-granular slicing. Results
//!   are bit-identical across shapes; this measures the scheduling
//!   overhead. With the session cache (PR 5) fine strides no longer
//!   replay Stage 1 + supernet pre-training per slice.
//!
//! Besides the criterion sweep, the bench always writes two
//! machine-readable records so CI can track the perf trajectory:
//! `BENCH_fleet.json` (slice-replay vs. session-cache wall-clock on a
//! stride-1 fleet whose same-seed shards share prefix-keyed sessions
//! across devices, plus per-scenario phase rows for the
//! {task × objective} cross on the builtin Jetson TX2 persona) and
//! `BENCH_oracle.json` (inline vs. pipelined measurement throughput). `HGNAS_BENCH_JSON=only` skips the sweep and
//! emits just the records, `HGNAS_BENCH_OUT` overrides the fleet record's
//! output path.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use hgnas_core::{LatencyMode, SearchConfig, TaskConfig};
use hgnas_device::{builtin_slug, DeviceKind, PersonaRegistry, Workload, WorkloadOp};
use hgnas_fleet::{
    cross_scenarios, MeasurementOracle, ObjectiveSpec, OracleConfig, Scheduler, SchedulerConfig,
    ShardSpec, Ticket,
};
use hgnas_pointcloud::TaskKind;
use hgnas_predictor::PredictorConfig;

fn probe_workload() -> Workload {
    let mut w = Workload::new();
    w.push(WorkloadOp::knn("knn", 1024, 20, 3));
    w.push(WorkloadOp::gather("gather", 1024, 20, 64));
    w.push(WorkloadOp::linear("mlp", 1024 * 20, 64, 64));
    w.push(WorkloadOp::reduce("max", 1024, 20, 64));
    w
}

fn bench_oracle(c: &mut Criterion) {
    const REQUESTS: u64 = 64;
    let w = probe_workload();
    let device = DeviceKind::JetsonTx2;

    let mut group = c.benchmark_group("fleet/oracle64");
    group.bench_function("inline", |b| {
        let profile = device.profile();
        b.iter(|| {
            for i in 0..REQUESTS {
                black_box(profile.measure_seeded(&w, i).unwrap());
            }
        })
    });
    for workers in [1usize, 2, 4] {
        let cfg = OracleConfig {
            workers_per_device: workers,
            ..OracleConfig::default()
        };
        let oracle = MeasurementOracle::start(&[device], &cfg);
        let client = oracle.client(device);
        group.bench_with_input(BenchmarkId::new("pipelined", workers), &workers, |b, _| {
            b.iter(|| {
                let tickets: Vec<Ticket> =
                    (0..REQUESTS).map(|i| client.submit(w.clone(), i)).collect();
                for t in tickets {
                    black_box(t.wait().unwrap());
                }
            })
        });
        drop(client);
        oracle.shutdown();
    }
    group.finish();
}

/// The tiny predictor-mode search configuration every fleet bench shard
/// uses: one Stage-1 iteration, a 40-sample predictor, 15 eval clouds.
fn tiny_config(device: DeviceKind, seed: u64) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = PredictorConfig {
        train_samples: 40,
        val_samples: 15,
        epochs: 4,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 2,
    };
    cfg.eval_clouds = 15;
    cfg.latency_mode = LatencyMode::Predictor;
    cfg.seed = seed;
    cfg
}

/// One tiny predictor-mode shard per (device, seed).
fn tiny_specs(shards: &[(DeviceKind, u64)]) -> Vec<ShardSpec> {
    let task = TaskConfig::tiny(3);
    shards
        .iter()
        .map(|&(device, seed)| ShardSpec::new(task.clone(), tiny_config(device, seed)))
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let specs = tiny_specs(&[
        (DeviceKind::Rtx3080, 0),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::RaspberryPi3B, 0),
    ]);

    let mut group = c.benchmark_group("fleet/scheduler3");
    // (threads, stride): 0 threads = legacy one-worker-per-shard.
    for (threads, stride) in [(0usize, 0usize), (2, 0), (2, 1), (1, 1)] {
        let label = format!("t{threads}-s{stride}");
        group.bench_with_input(
            BenchmarkId::new("shape", label),
            &(threads, stride),
            |b, &(threads, stride)| {
                b.iter(|| {
                    let scheduler = Scheduler::new(
                        specs.clone(),
                        SchedulerConfig {
                            threads,
                            preemption_stride: stride,
                            ..SchedulerConfig::default()
                        },
                    );
                    black_box(scheduler.run(None, None).expect("storeless run"))
                })
            },
        );
    }
    group.finish();
}

/// Times one stride-1 scheduler run of `specs` under a session budget;
/// returns (wall-clock ms, total prefix builds across shards, phase
/// breakdown).
fn time_fleet(
    specs: &[ShardSpec],
    session_memory_budget: Option<u64>,
) -> (f64, u64, hgnas_fleet::PhaseTimings) {
    let scheduler = Scheduler::new(
        specs.to_vec(),
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            session_memory_budget,
            ..SchedulerConfig::default()
        },
    );
    let t = std::time::Instant::now();
    let report = scheduler.run(None, None).expect("storeless run");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let builds = report.shards.iter().map(|s| s.prefix_builds).sum();
    (ms, builds, report.phase_timings)
}

/// Best-of-3 wall-clock of `f`, in milliseconds.
fn time_best_ms(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes the oracle throughput record: 64 inline measurements vs. the
/// same batch pipelined through 1/2/4-worker per-device pools.
fn emit_oracle_json() {
    const REQUESTS: u64 = 64;
    let w = probe_workload();
    let device = DeviceKind::JetsonTx2;
    let profile = device.profile();
    let inline_ms = time_best_ms(|| {
        for i in 0..REQUESTS {
            black_box(profile.measure_seeded(&w, i).unwrap());
        }
    });
    let pipelined: Vec<(usize, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            let cfg = OracleConfig {
                workers_per_device: workers,
                ..OracleConfig::default()
            };
            let oracle = MeasurementOracle::start(&[device], &cfg);
            let client = oracle.client(device);
            let ms = time_best_ms(|| {
                let tickets: Vec<Ticket> =
                    (0..REQUESTS).map(|i| client.submit(w.clone(), i)).collect();
                for t in tickets {
                    black_box(t.wait().unwrap());
                }
            });
            drop(client);
            oracle.shutdown();
            (workers, ms)
        })
        .collect();
    let mut json = format!(
        "{{\n  \"bench\": \"fleet/oracle64\",\n  \"requests\": {REQUESTS},\n  \
         \"inline_ms\": {inline_ms:.3}"
    );
    for &(workers, ms) in &pipelined {
        json.push_str(&format!(",\n  \"pipelined{workers}_ms\": {ms:.3}"));
    }
    json.push_str("\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_oracle.json");
    std::fs::write(path, json).expect("write bench json");
    println!("{path}: inline {inline_ms:.1} ms, pipelined {pipelined:?}");
}

/// Per-scenario phase rows for the {task × objective} cross on the
/// builtin Jetson TX2 persona. Each scenario runs as its own stride-1
/// single-shard fleet so the phase breakdown (predictor training, prefix
/// build, search) is attributable to that scenario alone: the
/// segmentation rows carry the wider-head supernet, the multi-metric
/// rows the energy/peak-memory costing on every candidate. Keys are
/// prefixed with the scenario label so `bench_diff` tracks each row
/// independently.
fn scenario_rows() -> String {
    let task = TaskConfig::tiny(3);
    let base = tiny_config(DeviceKind::JetsonTx2, 0);
    let jetson = PersonaRegistry::builtin()
        .get(builtin_slug(DeviceKind::JetsonTx2))
        .expect("builtin persona")
        .clone();
    let scenarios = cross_scenarios(
        &task,
        &base,
        &[TaskKind::Classification, TaskKind::Segmentation],
        &[
            ObjectiveSpec::accuracy_latency("acc-lat", base.alpha, base.beta),
            ObjectiveSpec::accuracy_latency("multi", base.alpha, base.beta)
                .with_energy(0.2, None)
                .with_peak_mem(0.05, None),
        ],
        &[jetson],
    );
    let mut rows = String::new();
    for s in &scenarios {
        let spec = ShardSpec::new(s.task.clone(), s.config.clone()).with_scenario(s.label.clone());
        let t = std::time::Instant::now();
        let scheduler = Scheduler::new(
            vec![spec],
            SchedulerConfig {
                threads: 1,
                preemption_stride: 1,
                ..SchedulerConfig::default()
            },
        );
        let report = scheduler.run(None, None).expect("scenario shard");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let ph = &report.phase_timings;
        let front = report.shards[0].pareto.len();
        rows.push_str(&format!(
            ",\n  \"{label}\": {{\"{label} wall_ms\": {wall_ms:.3}, \
             \"{label} predictor_train_ms\": {:.3}, \"{label} session_build_ms\": {:.3}, \
             \"{label} search_ms\": {:.3}, \"front\": {front}}}",
            ph.predictor_train_ms,
            ph.session_build_ms,
            ph.search_ms,
            label = s.label,
        ));
    }
    rows
}

/// Writes the machine-readable perf record CI uploads: the same stride-1
/// 4-shard fleet timed with the prefix replayed every slice (session
/// budget 0, no store — the pre-PR-5 behaviour) vs. the prefix-keyed
/// session cache, plus one phase row per {task × objective} scenario.
/// Three of the four shards share one prefix fingerprint (same seed,
/// different devices), so the cached run performs 2 builds for 4 shards
/// — the PR-7 sharing win on top of the PR-5 residency win.
fn emit_bench_json() {
    let specs = tiny_specs(&[
        (DeviceKind::Rtx3080, 0),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::RaspberryPi3B, 0),
        (DeviceKind::Rtx3080, 1),
    ]);
    let (replay_ms, replay_builds, _) = time_fleet(&specs, Some(0));
    let (session_ms, session_builds, phases) = time_fleet(&specs, None);
    // The coarse where-did-the-time-go breakdown for the session-cache run
    // (the shipping configuration): the re-profiling signal that names the
    // next optimisation target.
    let json = format!(
        "{{\n  \"bench\": \"fleet/session-vs-replay\",\n  \"shards\": {},\n  \
         \"preemption_stride\": 1,\n  \"threads\": 2,\n  \
         \"slice_replay_ms\": {replay_ms:.3},\n  \"session_cache_ms\": {session_ms:.3},\n  \
         \"speedup\": {:.3},\n  \"replay_prefix_builds\": {replay_builds},\n  \
         \"session_prefix_builds\": {session_builds},\n  \
         \"phases\": {{\"predictor_train_ms\": {:.3}, \"session_build_ms\": {:.3}, \
         \"session_restore_ms\": {:.3}, \"search_ms\": {:.3}, \"persist_ms\": {:.3}}}{scenarios}\n}}\n",
        specs.len(),
        replay_ms / session_ms.max(1e-9),
        phases.predictor_train_ms,
        phases.session_build_ms,
        phases.session_restore_ms,
        phases.search_ms,
        phases.persist_ms,
        scenarios = scenario_rows(),
    );
    // Cargo runs benches with cwd = the *package* dir (crates/bench), so a
    // bare relative default would land where CI's upload step never looks;
    // anchor it to the workspace root instead.
    let path = std::env::var("HGNAS_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json").into());
    std::fs::write(&path, json).expect("write bench json");
    println!(
        "{path}: slice-replay {replay_ms:.0} ms ({replay_builds} prefix builds) vs \
         session-cache {session_ms:.0} ms ({session_builds} prefix builds)"
    );
}

criterion_group!(benches, bench_oracle, bench_scheduler);

fn main() {
    // HGNAS_BENCH_JSON=only skips the criterion sweep (CI's quick path);
    // the JSON record is emitted either way.
    let json_only = std::env::var("HGNAS_BENCH_JSON").is_ok_and(|v| v == "only");
    if !json_only {
        benches();
    }
    emit_bench_json();
    emit_oracle_json();
}
