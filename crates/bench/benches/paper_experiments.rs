//! Regenerates every paper table and figure at tiny scale under
//! `cargo bench` (plain harness, not criterion): the full reproduction
//! suite in one pass. Run the individual binaries with
//! `HGNAS_SCALE=small|paper` for higher-fidelity numbers.

use hgnas_bench::{experiments, Scale};

fn main() {
    // Respect an explicit HGNAS_SCALE, default to tiny for bench runs.
    let scale = match std::env::var("HGNAS_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("paper") => Scale::Paper,
        _ => Scale::Tiny,
    };
    let t0 = std::time::Instant::now();

    experiments::tab1::run(scale);
    experiments::fig1::run(scale);
    experiments::fig3::run(scale);
    experiments::fig2b::run(scale);
    experiments::fig8::run(scale);
    experiments::tab2::run(scale);
    experiments::fig6::run(scale);
    experiments::fig7::run(scale);
    experiments::fig9::run_a(scale);
    experiments::fig9::run_b(scale);
    experiments::fig10::run(scale);

    println!(
        "\nall paper artifacts regenerated at {scale} scale in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
