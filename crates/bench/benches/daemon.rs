//! Daemon-path benchmarks: what does serving a search through
//! `hgnas-serve` cost over calling `run_fleet` directly?
//!
//! The daemon adds admission rounds (one scheduler construction per
//! round), wire-frame encoding of every event, and channel hops between
//! the engine and connection threads. This bench times the same two-shard
//! cold search both ways and splits out the client-visible latencies:
//! submit→first-event (how quickly a tenant sees life) and submit→report.
//!
//! Besides the criterion sweep, the bench always writes
//! `BENCH_daemon.json` (flat `*_ms` keys for `bench_diff`):
//! `direct_run_fleet_ms`, `daemon_request_to_report_ms`,
//! `daemon_request_to_first_event_ms`, `admission_overhead_ms`.
//! `HGNAS_BENCH_JSON=only` skips the sweep and emits just the record.

use criterion::{black_box, criterion_group, Criterion};
use hgnas_core::{LatencyMode, SearchConfig, TaskConfig};
use hgnas_device::DeviceKind;
use hgnas_fleet::{run_fleet, ArtifactStore, FleetConfig};
use hgnas_predictor::PredictorConfig;
use hgnas_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const DEVICES: [DeviceKind; 2] = [DeviceKind::Rtx3080, DeviceKind::JetsonTx2];
const TICK: Duration = Duration::from_secs(30);
const SEARCH: Duration = Duration::from_secs(600);

fn tiny_task() -> TaskConfig {
    TaskConfig::tiny(3)
}

fn tiny_config() -> SearchConfig {
    let mut cfg = SearchConfig::fast(DEVICES[0]);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = PredictorConfig {
        train_samples: 40,
        val_samples: 15,
        epochs: 4,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 2,
    };
    cfg.eval_clouds = 15;
    cfg.latency_mode = LatencyMode::Predictor;
    cfg
}

/// A unique throwaway store directory (fresh per run: every timing below
/// is a cold search, so the daemon/direct comparison is apples to apples).
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        TempStore {
            path: std::env::temp_dir()
                .join(format!("hgnas-bench-daemon-{}-{n}", std::process::id())),
        }
    }

    fn open(&self) -> ArtifactStore {
        ArtifactStore::open(&self.path).expect("store dir")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// The scheduler shape both paths share: 2 threads, stride 1.
fn fleet_config() -> FleetConfig {
    let mut fleet = FleetConfig::new(DEVICES.to_vec());
    fleet.threads = 2;
    fleet.preemption_stride = 1;
    fleet
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        preemption_stride: 1,
        slices_per_round: 4,
        ..ServeConfig::default()
    }
}

/// One cold direct run; wall-clock ms.
fn time_direct() -> f64 {
    let temp = TempStore::new();
    let store = temp.open();
    let t = Instant::now();
    black_box(run_fleet(&tiny_task(), &tiny_config(), &fleet_config(), Some(&store)).unwrap());
    t.elapsed().as_secs_f64() * 1e3
}

/// One cold daemon-served run; (submit→first-event ms, submit→report ms).
fn time_daemon() -> (f64, f64) {
    let temp = TempStore::new();
    let server = Server::start(temp.open(), serve_config());
    let mut client = server.connect();
    client.hello("bench", 1, TICK).unwrap();
    let t = Instant::now();
    let (request, _) = client
        .submit(&tiny_task(), &tiny_config(), &DEVICES, TICK)
        .unwrap();
    let mut first_event_ms = None;
    let report = client
        .wait_report(request, SEARCH, |_, _| {
            first_event_ms.get_or_insert_with(|| t.elapsed().as_secs_f64() * 1e3);
        })
        .unwrap();
    let report_ms = t.elapsed().as_secs_f64() * 1e3;
    black_box(report);
    drop(client);
    server.shutdown();
    (
        first_event_ms.expect("events precede the report"),
        report_ms,
    )
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/daemon2");
    group.sample_size(10);
    group.bench_function("direct", |b| b.iter(time_direct));
    group.bench_function("daemon", |b| b.iter(time_daemon));
    group.finish();
}

/// Best-of-3 over `f`, which returns its own measured milliseconds.
fn best_of_3(mut f: impl FnMut() -> f64) -> f64 {
    (0..3).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn emit_bench_json() {
    let direct_ms = best_of_3(time_direct);
    let (mut first_event_ms, mut report_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (fe, rp) = time_daemon();
        if rp < report_ms {
            report_ms = rp;
            first_event_ms = fe;
        }
    }
    let overhead_ms = report_ms - direct_ms;
    let json = format!(
        "{{\n  \"bench\": \"serve/daemon-vs-direct\",\n  \"shards\": {},\n  \
         \"preemption_stride\": 1,\n  \"threads\": 2,\n  \"slices_per_round\": 4,\n  \
         \"direct_run_fleet_ms\": {direct_ms:.3},\n  \
         \"daemon_request_to_first_event_ms\": {first_event_ms:.3},\n  \
         \"daemon_request_to_report_ms\": {report_ms:.3},\n  \
         \"admission_overhead_ms\": {overhead_ms:.3}\n}}\n",
        DEVICES.len(),
    );
    let path = std::env::var("HGNAS_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_daemon.json").into());
    std::fs::write(&path, json).expect("write bench json");
    println!(
        "{path}: direct {direct_ms:.0} ms, daemon {report_ms:.0} ms \
         (first event {first_event_ms:.0} ms, overhead {overhead_ms:.0} ms)"
    );
}

criterion_group!(benches, bench_paths);

fn main() {
    // HGNAS_BENCH_JSON=only skips the criterion sweep (CI's quick path);
    // the JSON record is emitted either way.
    let json_only = std::env::var("HGNAS_BENCH_JSON").is_ok_and(|v| v == "only");
    if !json_only {
        benches();
    }
    emit_bench_json();
}
