//! Criterion micro-benches for the numerical substrate, including the two
//! ablations DESIGN.md calls out: blocked vs naive matmul and brute-force
//! vs grid KNN.
//!
//! Besides the criterion sweep, the bench always writes a machine-readable
//! `BENCH_kernels.json` comparing the scalar and lane (AVX2) paths of every
//! kernel ported to the `simd` layer, one record per kernel × shape. The
//! two paths are bit-identical by construction, so the record is purely a
//! perf trajectory for CI (`bench_diff` compares it against the committed
//! baseline). `HGNAS_BENCH_JSON=only` skips the criterion sweep and emits
//! just the record; `HGNAS_BENCH_OUT` overrides the output path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use hgnas_graph::{knn_brute, knn_grid, knn_kdtree};
use hgnas_tensor::kernels::{fold_rows, scatter_add_rows};
use hgnas_tensor::matmul::{matmul_at, matmul_blocked, matmul_bt, matmul_naive, matmul_parallel};
use hgnas_tensor::reduce::{reduce_mid_axis, Reduction};
use hgnas_tensor::simd::{self, LanePath};
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 256] {
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| matmul_naive(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| matmul_blocked(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |bch, _| {
            bch.iter(|| matmul_parallel(black_box(&a), black_box(&b), 4))
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[256usize, 1024] {
        let pts: Vec<f32> = (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |bch, _| {
            bch.iter(|| knn_brute(black_box(&pts), 3, 20))
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |bch, _| {
            bch.iter(|| knn_grid(black_box(&pts), 3, 20))
        });
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |bch, _| {
            bch.iter(|| knn_kdtree(black_box(&pts), 3, 20))
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// scalar-vs-lane JSON record
// ---------------------------------------------------------------------------

/// Times `f` and returns the best-of-`reps` wall-clock in milliseconds.
/// Best-of (not mean) because the record is meant for a noisy CI runner:
/// the minimum is the least contaminated estimate of the kernel's cost.
fn time_best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, settle the lane-path OnceLock
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One kernel × shape, timed on the scalar path and on the detected lane
/// path. When the host has no AVX2 (or `HGNAS_SIMD=scalar`) both legs run
/// scalar and the speedup hovers around 1.0 — `lane_path` in the header
/// records which case the file describes.
fn time_both(name: &str, shape: &str, reps: usize, mut f: impl FnMut()) -> String {
    let scalar_ms = simd::with_path(LanePath::Scalar, || time_best_ms(reps, &mut f));
    let lane_ms = simd::with_path(LanePath::Avx2, || time_best_ms(reps, &mut f));
    format!(
        "{{\"kernel\": \"{name}\", \"shape\": \"{shape}\", \
         \"scalar_ms\": {scalar_ms:.4}, \"lane_ms\": {lane_ms:.4}, \
         \"speedup\": {:.3}}}",
        scalar_ms / lane_ms.max(1e-9)
    )
}

/// Writes the machine-readable perf record CI uploads and diffs against
/// `BENCH_kernels.baseline.json` (one kernel record per line so `bench_diff`
/// can parse it without a JSON dependency).
fn emit_bench_json() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut entries: Vec<String> = Vec::new();

    // Matmul family: one square shape and one ragged shape (remainder lanes).
    for &(m, k, n) in &[(256usize, 256usize, 256usize), (192, 100, 232)] {
        let shape = format!("{m}x{k}x{n}");
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let at = a.transpose2();
        let bt = b.transpose2();
        entries.push(time_both("matmul_blocked", &shape, 7, || {
            black_box(matmul_blocked(black_box(&a), black_box(&b)));
        }));
        entries.push(time_both("matmul_bt", &shape, 7, || {
            black_box(matmul_bt(black_box(&a), black_box(&bt)));
        }));
        entries.push(time_both("matmul_at", &shape, 7, || {
            black_box(matmul_at(black_box(&at), black_box(&b)));
        }));
    }

    // Message-passing shapes: [points, neighbours, channels] EdgeConv-style.
    let t = Tensor::rand_uniform(&mut rng, &[1024, 20, 64], -1.0, 1.0);
    entries.push(time_both("reduce_mid_sum", "1024x20x64", 9, || {
        black_box(reduce_mid_axis(black_box(&t), Reduction::Sum));
    }));
    let flat = Tensor::rand_uniform(&mut rng, &[1024 * 20, 64], -1.0, 1.0);
    let idx: Vec<usize> = (0..1024 * 20).map(|i| i % 1024).collect();
    entries.push(time_both("scatter_add_rows", "20480x64->1024", 9, || {
        black_box(scatter_add_rows(black_box(&flat), black_box(&idx), 1024));
    }));
    entries.push(time_both("fold_rows", "20480x64/20", 9, || {
        black_box(fold_rows(black_box(&flat), 20));
    }));

    // KNN graph construction (the grid path is what the pipeline uses).
    let pts: Vec<f32> = (0..1024 * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    entries.push(time_both("knn_grid", "1024x3 k=20", 7, || {
        black_box(knn_grid(black_box(&pts), 3, 20));
    }));

    let json = format!(
        "{{\n  \"bench\": \"kernels/scalar-vs-lane\",\n  \"lane_path\": \"{}\",\n  \
         \"lane_width\": {},\n  \"kernels\": [\n    {}\n  ]\n}}\n",
        simd::detected(),
        simd::LANES,
        entries.join(",\n    "),
    );
    // Cargo runs benches with cwd = the *package* dir (crates/bench), so a
    // bare relative default would land where CI's upload step never looks;
    // anchor it to the workspace root instead.
    let path = std::env::var("HGNAS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into()
    });
    std::fs::write(&path, &json).expect("write bench json");
    println!("{path}:\n{json}");
}

criterion_group!(benches, bench_matmul, bench_knn);

fn main() {
    // HGNAS_BENCH_JSON=only skips the criterion sweep (CI's quick path);
    // the JSON record is emitted either way.
    let json_only = std::env::var("HGNAS_BENCH_JSON").is_ok_and(|v| v == "only");
    if !json_only {
        benches();
    }
    emit_bench_json();
}
