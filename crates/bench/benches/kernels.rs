//! Criterion micro-benches for the numerical substrate, including the two
//! ablations DESIGN.md calls out: blocked vs naive matmul and brute-force
//! vs grid KNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgnas_graph::{knn_brute, knn_grid, knn_kdtree};
use hgnas_tensor::matmul::{matmul_blocked, matmul_naive, matmul_parallel};
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 256] {
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| matmul_naive(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| matmul_blocked(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |bch, _| {
            bch.iter(|| matmul_parallel(black_box(&a), black_box(&b), 4))
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[256usize, 1024] {
        let pts: Vec<f32> = (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |bch, _| {
            bch.iter(|| knn_brute(black_box(&pts), 3, 20))
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |bch, _| {
            bch.iter(|| knn_grid(black_box(&pts), 3, 20))
        });
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |bch, _| {
            bch.iter(|| knn_kdtree(black_box(&pts), 3, 20))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_knn);
criterion_main!(benches);
