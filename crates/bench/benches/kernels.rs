//! Criterion micro-benches for the numerical substrate, including the two
//! ablations DESIGN.md calls out: blocked vs naive matmul and brute-force
//! vs grid KNN.
//!
//! Besides the criterion sweep, the bench always writes a machine-readable
//! `BENCH_kernels.json` comparing the scalar and lane (AVX2) paths of every
//! kernel ported to the `simd` layer, one record per kernel × shape. The
//! two paths are bit-identical by construction, so the record is purely a
//! perf trajectory for CI (`bench_diff` compares it against the committed
//! baseline). `HGNAS_BENCH_JSON=only` skips the criterion sweep and emits
//! just the record; `HGNAS_BENCH_OUT` overrides the output path.

use criterion::{criterion_group, BenchmarkId, Criterion};
use hgnas_bench::record::{emit_bench_json, json_only, time_both};
use hgnas_graph::{knn_brute, knn_grid, knn_kdtree};
use hgnas_tensor::kernels::{fold_rows, scatter_add_rows};
use hgnas_tensor::matmul::{matmul_at, matmul_blocked, matmul_bt, matmul_naive, matmul_parallel};
use hgnas_tensor::reduce::{reduce_mid_axis, Reduction};
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 256] {
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| matmul_naive(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| matmul_blocked(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |bch, _| {
            bch.iter(|| matmul_parallel(black_box(&a), black_box(&b), 4))
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[256usize, 1024] {
        let pts: Vec<f32> = (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |bch, _| {
            bch.iter(|| knn_brute(black_box(&pts), 3, 20))
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |bch, _| {
            bch.iter(|| knn_grid(black_box(&pts), 3, 20))
        });
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |bch, _| {
            bch.iter(|| knn_kdtree(black_box(&pts), 3, 20))
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// scalar-vs-lane JSON record
// ---------------------------------------------------------------------------

/// Writes the machine-readable perf record CI uploads and diffs against
/// `BENCH_kernels.baseline.json` (one kernel record per line so `bench_diff`
/// can parse it without a JSON dependency).
fn emit_kernels_json() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut entries: Vec<String> = Vec::new();

    // Matmul family: one square shape and one ragged shape (remainder lanes).
    for &(m, k, n) in &[(256usize, 256usize, 256usize), (192, 100, 232)] {
        let shape = format!("{m}x{k}x{n}");
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let at = a.transpose2();
        let bt = b.transpose2();
        entries.push(time_both("matmul_blocked", &shape, 7, || {
            black_box(matmul_blocked(black_box(&a), black_box(&b)));
        }));
        entries.push(time_both("matmul_bt", &shape, 7, || {
            black_box(matmul_bt(black_box(&a), black_box(&bt)));
        }));
        entries.push(time_both("matmul_at", &shape, 7, || {
            black_box(matmul_at(black_box(&at), black_box(&b)));
        }));
    }

    // Message-passing shapes: [points, neighbours, channels] EdgeConv-style.
    let t = Tensor::rand_uniform(&mut rng, &[1024, 20, 64], -1.0, 1.0);
    entries.push(time_both("reduce_mid_sum", "1024x20x64", 9, || {
        black_box(reduce_mid_axis(black_box(&t), Reduction::Sum));
    }));
    let flat = Tensor::rand_uniform(&mut rng, &[1024 * 20, 64], -1.0, 1.0);
    let idx: Vec<usize> = (0..1024 * 20).map(|i| i % 1024).collect();
    entries.push(time_both("scatter_add_rows", "20480x64->1024", 9, || {
        black_box(scatter_add_rows(black_box(&flat), black_box(&idx), 1024));
    }));
    entries.push(time_both("fold_rows", "20480x64/20", 9, || {
        black_box(fold_rows(black_box(&flat), 20));
    }));

    // KNN graph construction (the grid path is what the pipeline uses).
    let pts: Vec<f32> = (0..1024 * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    entries.push(time_both("knn_grid", "1024x3 k=20", 7, || {
        black_box(knn_grid(black_box(&pts), 3, 20));
    }));

    emit_bench_json("kernels/scalar-vs-lane", "BENCH_kernels.json", &entries);
}

criterion_group!(benches, bench_matmul, bench_knn);

fn main() {
    // HGNAS_BENCH_JSON=only skips the criterion sweep (CI's quick path);
    // the JSON record is emitted either way.
    if !json_only() {
        benches();
    }
    emit_kernels_json();
}
