//! Harness binary regenerating the paper's `fig1` artifact.
fn main() {
    hgnas_bench::experiments::fig1::run(hgnas_bench::Scale::from_env());
}
