//! Compares a `BENCH_*.json` perf record against a committed baseline.
//!
//! ```text
//! bench_diff <current.json> <baseline.json> [--fail-over <ratio>]
//! ```
//!
//! Two formats are auto-detected:
//!
//! - **kernels** (`benches/kernels.rs`): one record per line with
//!   `"kernel"`/`"shape"`/`"scalar_ms"`/`"lane_ms"` fields. For every
//!   kernel × shape present in both files the tool prints the lane-path
//!   wall-clock ratio (current / baseline) alongside both files'
//!   scalar→lane speedups.
//! - **flat timings** (`benches/fleet.rs`, `benches/evaluator.rs`): any
//!   JSON whose interesting numbers are `*_ms` fields — including nested
//!   phase breakdowns like `session_build_ms` — plus `speedup`. Every
//!   `*_ms` metric present in both files is compared current / baseline.
//!
//! The default mode is report-only: timings on shared CI runners are
//! noisy, and a hard gate would flake. `--fail-over R` opts into failing
//! (exit 1) when any compared time regressed by more than `R`× against
//! the baseline — useful locally, where the noise floor is known.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One kernel record: (scalar_ms, lane_ms, speedup).
type Record = (f64, f64, f64);

/// Extracts `"key": <string-or-number>` from a single JSON line. Enough for
/// the flat records our benches emit; not a general JSON parser.
fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        Some(stripped[..stripped.find('"')?].to_string())
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

/// Extracts every `"<name>_ms": <number>` (and `"speedup"`) from the whole
/// text, nested objects included — the flat-timings format of the fleet
/// and evaluator bench records.
fn parse_timings(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(endq) = after.find('"') else { break };
        let key = &after[..endq];
        let tail = &after[endq + 1..];
        if key.ends_with("_ms") || key == "speedup" {
            if let Some(value) = tail.trim_start().strip_prefix(':') {
                let value = value.trim_start();
                let end = value
                    .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                    .unwrap_or(value.len());
                if let Ok(n) = value[..end].parse::<f64>() {
                    out.insert(key.to_string(), n);
                }
            }
        }
        rest = tail;
    }
    out
}

/// Compares two flat-timings records; returns the worst `_ms` ratio.
fn diff_timings(
    cur: &BTreeMap<String, f64>,
    base: &BTreeMap<String, f64>,
) -> Option<(String, f64)> {
    println!(
        "{:<34} {:>10} {:>10} {:>7}",
        "metric", "base", "cur", "ratio"
    );
    let mut worst: Option<(String, f64)> = None;
    for (key, &cur_v) in cur {
        let Some(&base_v) = base.get(key) else {
            println!("{key:<34} (not in baseline)");
            continue;
        };
        let ratio = cur_v / base_v.max(1e-9);
        println!("{key:<34} {base_v:>10.3} {cur_v:>10.3} {ratio:>6.2}x");
        // Only wall-clock metrics gate; `speedup` going *up* is good.
        if key.ends_with("_ms") && worst.as_ref().is_none_or(|(_, w)| ratio > *w) {
            worst = Some((key.clone(), ratio));
        }
    }
    for key in base.keys().filter(|k| !cur.contains_key(*k)) {
        println!("{key:<34} (dropped from current)");
    }
    worst
}

/// Parses a kernels bench file into (lane_path, records keyed by
/// "kernel shape").
fn parse(text: &str, path: &str) -> Result<(String, BTreeMap<String, Record>), String> {
    let mut lane_path = String::from("?");
    let mut records = BTreeMap::new();
    for line in text.lines() {
        if line.contains("\"lane_path\"") {
            if let Some(v) = field(line, "lane_path") {
                lane_path = v;
            }
        }
        if !line.contains("\"kernel\"") {
            continue;
        }
        let (Some(kernel), Some(shape)) = (field(line, "kernel"), field(line, "shape")) else {
            continue;
        };
        let num = |key: &str| field(line, key).and_then(|v| v.parse::<f64>().ok());
        let (Some(s), Some(l), Some(sp)) = (num("scalar_ms"), num("lane_ms"), num("speedup"))
        else {
            return Err(format!("{path}: malformed record: {line}"));
        };
        records.insert(format!("{kernel} {shape}"), (s, l, sp));
    }
    if records.is_empty() {
        return Err(format!("{path}: no kernel records found"));
    }
    Ok((lane_path, records))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fail_over: Option<f64> = None;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--fail-over" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => fail_over = Some(r),
                None => {
                    eprintln!("--fail-over needs a ratio, e.g. --fail-over 1.5");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(a);
        }
    }
    let [current, baseline] = files[..] else {
        eprintln!("usage: bench_diff <current.json> <baseline.json> [--fail-over <ratio>]");
        return ExitCode::FAILURE;
    };

    let (cur_text, base_text) = match (
        std::fs::read_to_string(current),
        std::fs::read_to_string(baseline),
    ) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) => {
            eprintln!("bench_diff: {current}: {e}");
            return ExitCode::FAILURE;
        }
        (_, Err(e)) => {
            eprintln!("bench_diff: {baseline}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Format auto-detection: per-kernel records vs. flat `*_ms` timings.
    if !cur_text.contains("\"kernel\"") {
        let (cur, base) = (parse_timings(&cur_text), parse_timings(&base_text));
        if cur.is_empty() || base.is_empty() {
            eprintln!("bench_diff: no *_ms metrics found to compare");
            return ExitCode::FAILURE;
        }
        let worst = diff_timings(&cur, &base);
        if let (Some(limit), Some((key, ratio))) = (fail_over, &worst) {
            if *ratio > limit {
                eprintln!("bench_diff: {key} regressed {ratio:.2}x > --fail-over {limit}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let ((cur_path, cur), (base_path, base)) =
        match (parse(&cur_text, current), parse(&base_text, baseline)) {
            (Ok(c), Ok(b)) => (c, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::FAILURE;
            }
        };
    if cur_path != base_path {
        println!("note: lane paths differ (current={cur_path}, baseline={base_path}); ratios compare different code paths");
    }

    println!(
        "{:<34} {:>9} {:>9} {:>7}   {:>8} {:>8}",
        "kernel", "base_ms", "cur_ms", "ratio", "base_spd", "cur_spd"
    );
    let mut worst: Option<(String, f64)> = None;
    for (key, &(_, cur_lane, cur_spd)) in &cur {
        let Some(&(_, base_lane, base_spd)) = base.get(key) else {
            println!("{key:<34} (not in baseline)");
            continue;
        };
        let ratio = cur_lane / base_lane.max(1e-9);
        println!(
            "{key:<34} {base_lane:>9.4} {cur_lane:>9.4} {ratio:>6.2}x   {base_spd:>7.2}x {cur_spd:>7.2}x"
        );
        if worst.as_ref().is_none_or(|(_, w)| ratio > *w) {
            worst = Some((key.clone(), ratio));
        }
    }
    for key in base.keys().filter(|k| !cur.contains_key(*k)) {
        println!("{key:<34} (dropped from current)");
    }

    if let (Some(limit), Some((key, ratio))) = (fail_over, &worst) {
        if *ratio > limit {
            eprintln!("bench_diff: {key} regressed {ratio:.2}x > --fail-over {limit}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
