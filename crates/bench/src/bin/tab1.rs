//! Harness binary regenerating the paper's `tab1` artifact.
fn main() {
    hgnas_bench::experiments::tab1::run(hgnas_bench::Scale::from_env());
}
