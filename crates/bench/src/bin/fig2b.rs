//! Harness binary regenerating the paper's `fig2b` artifact.
fn main() {
    hgnas_bench::experiments::fig2b::run(hgnas_bench::Scale::from_env());
}
