//! Harness binary regenerating the paper's `fig8` artifact.
fn main() {
    hgnas_bench::experiments::fig8::run(hgnas_bench::Scale::from_env());
}
