//! Harness binary regenerating the paper's `fig7` artifact.
fn main() {
    hgnas_bench::experiments::fig7::run(hgnas_bench::Scale::from_env());
}
