//! Harness binary regenerating the paper's `fig6` artifact.
fn main() {
    hgnas_bench::experiments::fig6::run(hgnas_bench::Scale::from_env());
}
