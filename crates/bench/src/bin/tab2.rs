//! Harness binary regenerating the paper's `tab2` artifact.
fn main() {
    hgnas_bench::experiments::tab2::run(hgnas_bench::Scale::from_env());
}
