//! Harness binary regenerating the paper's Fig. 9(a) ablation.
fn main() {
    hgnas_bench::experiments::fig9::run_a(hgnas_bench::Scale::from_env());
}
