//! Harness binary regenerating the paper's `fig3` artifact.
fn main() {
    hgnas_bench::experiments::fig3::run(hgnas_bench::Scale::from_env());
}
