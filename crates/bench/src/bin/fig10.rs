//! Harness binary regenerating the paper's `fig10` artifact.
fn main() {
    hgnas_bench::experiments::fig10::run(hgnas_bench::Scale::from_env());
}
