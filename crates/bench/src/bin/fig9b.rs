//! Harness binary regenerating the paper's Fig. 9(b) ablation.
fn main() {
    hgnas_bench::experiments::fig9::run_b(hgnas_bench::Scale::from_env());
}
