//! The per-device architectures the paper visualises in Fig. 10,
//! transcribed into the fine-grained IR.
//!
//! These are the paper's published search results (the `Device-Fast`
//! models). The `fig1` harness deploys them for the latency/memory scaling
//! comparison, and `fig10` renders them. Note the paper's caption: adjacent
//! KNN ops are merged during execution, so the transcriptions below use the
//! post-merge forms.

use hgnas_device::DeviceKind;
use hgnas_ops::{Aggregator, Architecture, MessageType, Operation, SampleFn};

fn agg(msg: MessageType, a: Aggregator) -> Operation {
    Operation::Aggregate { agg: a, msg }
}

/// The paper's Fig. 10 `Device_Fast` architecture for `device`, at fanout
/// `k` with `classes` output classes.
///
/// # Panics
///
/// Panics if `device` is the V100 (not an edge evaluation target).
pub fn fig10_fast(device: DeviceKind, k: usize, classes: usize) -> Architecture {
    use Aggregator::{Max, Mean};
    use MessageType::{SourcePos, TargetRel};
    let ops = match device {
        // RTX_Fast: KNN -> Combine(64) -> Aggregate(Target||Rel, max)
        //        -> Aggregate(Target||Rel, mean)  (few valid KNNs on GPUs).
        DeviceKind::Rtx3080 => vec![
            Operation::Sample(SampleFn::Knn),
            Operation::Combine { dim: 64 },
            agg(TargetRel, Max),
            agg(TargetRel, Mean),
        ],
        // Intel_Fast: KNN -> Combine(64) -> Aggregate(Target||Rel, max)
        //   -> Combine(64) -> Combine(128) -> Aggregate(Target||Rel, mean)
        //   (fewer aggregate ops for the CPU).
        DeviceKind::I78700K => vec![
            Operation::Sample(SampleFn::Knn),
            Operation::Combine { dim: 64 },
            agg(TargetRel, Max),
            Operation::Combine { dim: 64 },
            Operation::Combine { dim: 128 },
            agg(TargetRel, Mean),
        ],
        // TX2_Fast: KNN -> Aggregate(Target||Rel, max)
        //   -> Aggregate(Target||Rel, mean) -> Combine(128)
        //   -> Aggregate(Target||Rel, mean).
        DeviceKind::JetsonTx2 => vec![
            Operation::Sample(SampleFn::Knn),
            agg(TargetRel, Max),
            agg(TargetRel, Mean),
            Operation::Combine { dim: 128 },
            agg(TargetRel, Mean),
        ],
        // Pi_Fast: KNN -> Combine(128) -> Aggregate(Source pos, max)
        //   -> Combine(32) -> Combine(32) -> Aggregate(Source pos, max)
        //   (every operation simplified for the Pi).
        DeviceKind::RaspberryPi3B => vec![
            Operation::Sample(SampleFn::Knn),
            Operation::Combine { dim: 128 },
            agg(SourcePos, Max),
            Operation::Combine { dim: 32 },
            Operation::Combine { dim: 32 },
            agg(SourcePos, Max),
        ],
        DeviceKind::V100 => panic!("V100 is the search host, not an edge target"),
    };
    Architecture::new(ops, k, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_ops::lower_edgeconv;
    use hgnas_ops::DgcnnConfig;

    #[test]
    fn all_fast_archs_beat_dgcnn_on_their_device() {
        let dg = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
        for persona in hgnas_device::PersonaRegistry::builtin().edge_targets() {
            let profile = &persona.profile;
            let fast = fig10_fast(persona.base_kind(), 20, 40).lower(1024, &[128]);
            let speedup = profile.execute(&dg).latency_ms / profile.execute(&fast).latency_ms;
            assert!(speedup > 2.0, "{}: speedup {speedup:.1}", persona.name);
        }
    }

    #[test]
    fn pi_fast_fits_at_2048_points_where_dgcnn_ooms() {
        let pi = DeviceKind::RaspberryPi3B.profile();
        let dg = lower_edgeconv(&DgcnnConfig::paper(40), 2048);
        assert!(pi.execute(&dg).oom, "DGCNN should OOM at 2048 on the Pi");
        let fast = fig10_fast(DeviceKind::RaspberryPi3B, 20, 40).lower(2048, &[128]);
        assert!(!pi.execute(&fast).oom, "Pi_Fast should fit at 2048");
    }

    #[test]
    fn gpu_archs_have_single_knn() {
        for device in [DeviceKind::Rtx3080, DeviceKind::JetsonTx2] {
            let a = fig10_fast(device, 20, 40);
            assert_eq!(a.count(hgnas_ops::OpType::Sample), 1, "{device}");
        }
    }
}
