//! Shared scaffolding for the machine-readable `BENCH_*.json` kernel
//! records the criterion benches emit alongside their sweeps.
//!
//! A record file is one JSON object with a `"kernels"` array of one-line
//! records (`kernel`/`shape`/`scalar_ms`/`lane_ms`/`speedup`), the format
//! `bench_diff` parses without a JSON dependency. The two lane paths are
//! bit-identical by construction, so the record is purely a perf
//! trajectory for CI.

use hgnas_tensor::simd::{self, LanePath};

/// Times `f` and returns the best-of-`reps` wall-clock in milliseconds.
/// Best-of (not mean) because the record is meant for a noisy CI runner:
/// the minimum is the least contaminated estimate of the kernel's cost.
pub fn time_best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, settle the lane-path OnceLock
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One kernel × shape, timed on the scalar path and on the detected lane
/// path. When the host has no AVX2 (or `HGNAS_SIMD=scalar`) both legs run
/// scalar and the speedup hovers around 1.0 — `lane_path` in the header
/// records which case the file describes.
pub fn time_both(name: &str, shape: &str, reps: usize, mut f: impl FnMut()) -> String {
    let scalar_ms = simd::with_path(LanePath::Scalar, || time_best_ms(reps, &mut f));
    let lane_ms = simd::with_path(LanePath::Avx2, || time_best_ms(reps, &mut f));
    format!(
        "{{\"kernel\": \"{name}\", \"shape\": \"{shape}\", \
         \"scalar_ms\": {scalar_ms:.4}, \"lane_ms\": {lane_ms:.4}, \
         \"speedup\": {:.3}}}",
        scalar_ms / lane_ms.max(1e-9)
    )
}

/// Writes the record file CI uploads and diffs against the committed
/// baseline. `default_file` is a bare file name (e.g. `BENCH_ops.json`):
/// cargo runs benches with cwd = the *package* dir (`crates/bench`), so the
/// default is anchored to the workspace root; `HGNAS_BENCH_OUT` overrides
/// the full path.
pub fn emit_bench_json(bench: &str, default_file: &str, entries: &[String]) {
    let json = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"lane_path\": \"{}\",\n  \
         \"lane_width\": {},\n  \"kernels\": [\n    {}\n  ]\n}}\n",
        simd::detected(),
        simd::LANES,
        entries.join(",\n    "),
    );
    let path = std::env::var("HGNAS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../{default_file}", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &json).expect("write bench json");
    println!("{path}:\n{json}");
}

/// True when `HGNAS_BENCH_JSON=only` asks for just the JSON record (CI's
/// quick path), skipping the criterion sweep.
pub fn json_only() -> bool {
    std::env::var("HGNAS_BENCH_JSON").is_ok_and(|v| v == "only")
}
