//! Fig. 6: accuracy-vs-latency frontier per device — HGNAS `Acc`/`Fast`
//! points against DGCNN and the manual baselines.

use crate::experiments::tab2;
use crate::Scale;
use hgnas_core::pareto_front;

/// Prints per-device scatter series (latency ms, overall accuracy %).
pub fn run(scale: Scale) {
    crate::banner(
        "fig6",
        "accuracy vs latency frontier per device (Fig. 6)",
        scale,
    );
    let results = tab2::compute(scale);
    for dr in &results {
        println!(
            "\n--- {} (x = latency ms @1024 pts, y = OA%) ---",
            dr.device
        );
        for row in &dr.rows {
            println!(
                "  ({:>9.1}, {:>5.1})  {}",
                row.latency_ms,
                row.oa * 100.0,
                row.name
            );
        }
        // Frontier check: the HGNAS points should not be dominated.
        let pts: Vec<(f64, f64)> = dr.rows.iter().map(|r| (r.latency_ms, r.oa)).collect();
        let front = pareto_front(&pts);
        let names: Vec<&str> = front.iter().map(|&i| dr.rows[i].name.as_str()).collect();
        println!("  Pareto front: {}", names.join(", "));
        let dgcnn = &dr.rows[0];
        let hgnas_fast = dr.rows.last().unwrap();
        let verdict = if hgnas_fast.latency_ms < dgcnn.latency_ms {
            "HGNAS-Fast strictly faster than DGCNN"
        } else {
            "WARNING: frontier not reproduced on this run"
        };
        println!("  -> {verdict}");
    }
    println!("\n(the ideal solution sits top-left; HGNAS points maintain the better");
    println!(" frontier — lower latency at comparable accuracy — as in Fig. 6)");
}
