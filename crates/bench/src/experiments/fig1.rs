//! Fig. 1: DGCNN vs HGNAS latency & peak memory as point count scales,
//! plus the cross-device speedup / memory-reduction summary.
//!
//! Deploys the paper's published Fig. 10 `Device_Fast` architectures (see
//! [`crate::fig10_archs`]) against paper-scale DGCNN on the device
//! simulator. Pure simulation — always runs at the paper's 1024-point
//! operating point regardless of scale.

use crate::{fig10_archs::fig10_fast, Scale};
use hgnas_device::DeviceKind;
use hgnas_ops::{lower_edgeconv, DgcnnConfig};

/// Paper Fig. 1 headline numbers for comparison: per-device speedup.
const PAPER_SPEEDUP: [(DeviceKind, f64); 4] = [
    (DeviceKind::Rtx3080, 10.6),
    (DeviceKind::I78700K, 10.2),
    (DeviceKind::JetsonTx2, 7.5),
    (DeviceKind::RaspberryPi3B, 7.4),
];

/// Prints the Fig. 1 reproduction.
pub fn run(scale: Scale) {
    crate::banner(
        "fig1",
        "DGCNN vs HGNAS: latency & peak memory scaling (Fig. 1)",
        scale,
    );
    let classes = 40;
    let dgcnn_cfg = DgcnnConfig::paper(classes);

    println!("\nRaspberry Pi sweep (left plots of Fig. 1):");
    println!(
        "{:>8} {:>14} {:>14} {:>13} {:>13}",
        "points", "DGCNN lat", "Ours lat", "DGCNN mem", "Ours mem"
    );
    let pi = DeviceKind::RaspberryPi3B.profile();
    let pi_fast = fig10_fast(DeviceKind::RaspberryPi3B, 20, classes);
    for n in [128usize, 256, 512, 1024, 1536, 2048] {
        let dg = pi.execute(&lower_edgeconv(&dgcnn_cfg, n));
        let ours = pi.execute(&pi_fast.lower(n, &[128]));
        let dg_mem = if dg.oom {
            "OOM".to_string()
        } else {
            format!("{:.0} MB", dg.peak_mem_mb)
        };
        println!(
            "{n:>8} {:>12.2} s {:>12.2} s {:>13} {:>10.0} MB",
            dg.latency_ms / 1e3,
            ours.latency_ms / 1e3,
            dg_mem,
            ours.peak_mem_mb
        );
    }

    println!("\ncross-device summary at 1024 points (right plots of Fig. 1):");
    println!(
        "{:14} {:>11} {:>11} {:>9} {:>11} {:>10} {:>10}",
        "device", "DGCNN", "Ours", "speedup", "paper", "mem red.", "fps"
    );
    let dg_w = lower_edgeconv(&dgcnn_cfg, 1024);
    for (device, paper_speedup) in PAPER_SPEEDUP {
        let p = device.profile();
        let dg = p.execute(&dg_w);
        let ours = p.execute(&fig10_fast(device, 20, classes).lower(1024, &[128]));
        println!(
            "{:14} {:>9.1}ms {:>9.1}ms {:>8.1}x {:>10.1}x {:>9.1}% {:>10.1}",
            device.name(),
            dg.latency_ms,
            ours.latency_ms,
            dg.latency_ms / ours.latency_ms,
            paper_speedup,
            (1.0 - ours.peak_mem_mb / dg.peak_mem_mb) * 100.0,
            1e3 / ours.latency_ms
        );
    }
    println!("\n(architectures: the paper's published Fig. 10 Device_Fast models;");
    println!(" memory reduction is on total resident peak incl. runtime footprint)");
}
