//! Fig. 3: execution-time breakdown of DGCNN across the four platforms.

use crate::Scale;
use hgnas_device::{DeviceKind, OpClass};
use hgnas_ops::{lower_edgeconv, DgcnnConfig};

/// Paper Fig. 3 percentages (sample, aggregate, combine, others) as read
/// from the text: GPUs are sample-dominated, the i7 is aggregate-dominated,
/// the Pi is spread across all phases.
const PAPER_BREAKDOWN: [(DeviceKind, [f64; 4]); 4] = [
    (DeviceKind::Rtx3080, [53.26, 33.13, 5.42, 8.19]),
    (DeviceKind::I78700K, [1.76, 87.44, 0.85, 9.95]),
    (DeviceKind::JetsonTx2, [50.88, 11.70, 8.17, 29.25]),
    (DeviceKind::RaspberryPi3B, [33.55, 22.46, 27.32, 16.66]),
];

/// Prints the breakdown reproduction.
pub fn run(scale: Scale) {
    crate::banner(
        "fig3",
        "DGCNN execution-time breakdown per platform (Fig. 3)",
        scale,
    );
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    println!(
        "\n{:14} {:>10} | {:>17} {:>17} {:>17} {:>17}",
        "device", "latency", "sample", "aggregate", "combine", "other"
    );
    println!(
        "{:26} | {:>17} {:>17} {:>17} {:>17}",
        "", "ours / paper", "ours / paper", "ours / paper", "ours / paper"
    );
    for (device, paper) in PAPER_BREAKDOWN {
        let r = device.profile().execute(&w);
        let f = r.breakdown_fractions();
        println!(
            "{:14} {:>8.1}ms | {:>7.1}% / {:>5.1}% {:>7.1}% / {:>5.1}% {:>7.1}% / {:>5.1}% {:>7.1}% / {:>5.1}%",
            device.name(),
            r.latency_ms,
            f[OpClass::Sample.index()] * 100.0,
            paper[0],
            f[OpClass::Aggregate.index()] * 100.0,
            paper[1],
            f[OpClass::Combine.index()] * 100.0,
            paper[2],
            f[OpClass::Other.index()] * 100.0,
            paper[3],
        );
    }
    println!("\n(paper columns transcribed from Fig. 3; the i7 pie's sample/aggregate");
    println!(" labels are ambiguous in the figure — the text says both dominate, and");
    println!(" our profile follows the text: sample+aggregate > 80% on the i7)");
}
