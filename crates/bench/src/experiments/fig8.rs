//! Fig. 8: predictor accuracy per device — predicted-vs-measured scatter,
//! MAPE, and the fraction within a 10 % error bound.

use crate::Scale;
use hgnas_device::DeviceKind;
use hgnas_predictor::{generate_dataset, LatencyPredictor, PredictorConfig, PredictorContext};

/// Paper Fig. 8 MAPE per device (fractions).
const PAPER_MAPE: [(DeviceKind, f64); 4] = [
    (DeviceKind::Rtx3080, 0.06),
    (DeviceKind::I78700K, 0.06),
    (DeviceKind::JetsonTx2, 0.06),
    (DeviceKind::RaspberryPi3B, 0.19),
];

/// Trains and evaluates a predictor per device.
pub fn run(scale: Scale) {
    crate::banner("fig8", "GNN predictor accuracy per device (Fig. 8)", scale);
    let (ctx, cfg) = match scale {
        Scale::Paper => (PredictorContext::paper(), PredictorConfig::paper()),
        Scale::Small => (PredictorContext::small(), PredictorConfig::small()),
        Scale::Tiny => (
            PredictorContext {
                positions: 6,
                points: 128,
                k: 10,
                classes: 4,
                head_hidden: vec![16],
            },
            PredictorConfig {
                train_samples: 150,
                val_samples: 60,
                epochs: 12,
                lr: 3e-3,
                gcn_dims: vec![24, 24],
                mlp_hidden: vec![16],
                seed: 2,
                global_node: true,
                batch: 1,
            },
        ),
    };

    println!(
        "\n{:14} {:>10} {:>11} {:>13} {:>13}",
        "device", "MAPE%", "paper", "within 10%", "train size"
    );
    let mut scatter = Vec::new();
    for (device, paper_mape) in PAPER_MAPE {
        let (predictor, stats) = LatencyPredictor::train(device, &ctx, &cfg);
        println!(
            "{:14} {:>9.1}% {:>10.0}% {:>12.0}% {:>13}",
            device.name(),
            stats.val_mape * 100.0,
            paper_mape * 100.0,
            stats.val_within_10pct * 100.0,
            stats.train_size
        );
        // A few scatter pairs on a fresh held-out set.
        let fresh = generate_dataset(
            &device.profile(),
            ctx.positions,
            ctx.points,
            ctx.k,
            ctx.classes,
            &ctx.head_hidden,
            6,
            4242,
        );
        let eval = predictor.evaluate(&fresh);
        scatter.push((device, eval.pairs));
    }

    println!("\nscatter samples (predicted -> measured, ms):");
    for (device, pairs) in scatter {
        let line: Vec<String> = pairs
            .iter()
            .map(|(p, m)| format!("{p:.1}->{m:.1}"))
            .collect();
        println!("{:14} {}", device.name(), line.join("  "));
    }
    println!("\n(the Pi's higher MAPE mirrors the paper: its measurements carry ~15%");
    println!(" multiplicative noise, so even a perfect model cannot go below that)");
}
