//! One module per paper artifact; each exposes `run(scale)`.

pub mod fig1;
pub mod fig10;
pub mod fig2b;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod tab1;
pub mod tab2;
