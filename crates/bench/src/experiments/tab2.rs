//! Table II + Fig. 6: HGNAS-designed models vs DGCNN and the manual
//! optimisations, per device.
//!
//! For every edge device two searches run — `Acc` (accuracy-leaning β) and
//! `Fast` (latency-leaning β) — and the found architectures are trained
//! stand-alone on SynthNet40. Accuracy comes from that training at the
//! harness scale; latency/peak-memory come from deploying at the paper's
//! 1024-point operating point (k=20) on the device simulator, which is what
//! makes the latency column comparable with the paper's Table II.

use crate::Scale;
use hgnas_core::Hgnas;
use hgnas_device::DeviceKind;
use hgnas_nn::Module;
use hgnas_ops::train::{evaluate, fit};
use hgnas_ops::{
    dgcnn, knn_reuse_baseline, lower_edgeconv, tailor_baseline, DgcnnConfig, GnnModel,
};
use hgnas_pointcloud::SynthNet40;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub name: String,
    /// Parameter size, MB.
    pub size_mb: f64,
    /// Overall accuracy (fraction).
    pub oa: f64,
    /// Balanced accuracy (fraction).
    pub macc: f64,
    /// Latency at the 1024-point deployment, ms.
    pub latency_ms: f64,
    /// Peak memory at the 1024-point deployment, MB.
    pub mem_mb: f64,
}

/// All rows for one device.
#[derive(Debug, Clone)]
pub struct DeviceResults {
    /// The device.
    pub device: DeviceKind,
    /// DGCNN, \[6\], \[7\], Device-Acc, Device-Fast.
    pub rows: Vec<Row>,
    /// The searched architectures (Acc, Fast) for Fig. 10-style display.
    pub found: Vec<(String, hgnas_ops::Architecture)>,
}

/// Runs the searches and measurements behind Table II / Fig. 6.
pub fn compute(scale: Scale) -> Vec<DeviceResults> {
    let task = scale.task(3);
    let ds = SynthNet40::generate(&task.dataset);
    let fit_cfg = scale.fit();
    let mut rng = StdRng::seed_from_u64(9);

    // --- baselines: train once at harness scale, deploy at paper scale ---
    let mut dg_model = dgcnn(&mut rng, scale.dgcnn(ds.classes));
    fit(&mut dg_model, &ds.train, &fit_cfg);
    let dg_eval = evaluate(&dg_model, &ds.test, ds.classes, 3);
    let dg_deploy = lower_edgeconv(&DgcnnConfig::paper(40), 1024);

    let mut reuse_model = knn_reuse_baseline(&mut rng, scale.dgcnn(ds.classes));
    fit(&mut reuse_model, &ds.train, &fit_cfg);
    let reuse_eval = evaluate(&reuse_model, &ds.test, ds.classes, 3);
    let mut reuse_paper = DgcnnConfig::paper(40);
    reuse_paper.dynamic = false;
    reuse_paper.reuse_after = 1;
    let reuse_deploy = lower_edgeconv(&reuse_paper, 1024);

    let tailor_arch = tailor_baseline(false, task.k, ds.classes);
    let mut tailor_model = GnnModel::new(&mut rng, tailor_arch, &task.head_hidden);
    fit(&mut tailor_model, &ds.train, &fit_cfg);
    let tailor_eval = evaluate(&tailor_model, &ds.test, ds.classes, 3);
    let tailor_deploy = tailor_baseline(true, 20, 40).lower(1024, &[128]);

    let mut results = Vec::new();
    for persona in hgnas_device::PersonaRegistry::builtin().edge_targets() {
        let device = persona.base_kind();
        let profile = &persona.profile;
        let mut rows = vec![
            Row {
                name: "DGCNN [5]".into(),
                size_mb: dg_model.size_mb(),
                oa: dg_eval.overall,
                macc: dg_eval.balanced,
                latency_ms: profile.execute(&dg_deploy).latency_ms,
                mem_mb: profile.execute(&dg_deploy).peak_mem_mb,
            },
            Row {
                name: "KNN-reuse [6]".into(),
                size_mb: reuse_model.size_mb(),
                oa: reuse_eval.overall,
                macc: reuse_eval.balanced,
                latency_ms: profile.execute(&reuse_deploy).latency_ms,
                mem_mb: profile.execute(&reuse_deploy).peak_mem_mb,
            },
            Row {
                name: "simplified [7]".into(),
                size_mb: tailor_model.size_mb(),
                oa: tailor_eval.overall,
                macc: tailor_eval.balanced,
                latency_ms: profile.execute(&tailor_deploy).latency_ms,
                mem_mb: profile.execute(&tailor_deploy).peak_mem_mb,
            },
        ];
        let mut found = Vec::new();

        for (label, beta, seed) in [("Acc", 0.15, 21u64), ("Fast", 0.5, 22u64)] {
            let mut cfg = scale.search(device);
            cfg.beta = beta;
            cfg.seed = seed;
            let outcome = Hgnas::new(task.clone(), cfg).run();
            let arch = outcome.best.architecture.clone();

            // Stand-alone training of the found architecture.
            let mut model_rng = StdRng::seed_from_u64(seed);
            let mut model = GnnModel::new(&mut model_rng, arch.clone(), &task.head_hidden);
            fit(&mut model, &ds.train, &fit_cfg);
            let eval = evaluate(&model, &ds.test, ds.classes, 3);

            // Deploy at the paper's operating point: 1024 points, k=20.
            let mut deploy_arch = arch.clone();
            deploy_arch.k = 20;
            let deploy = deploy_arch.lower(1024, &[128]);
            let report = profile.execute(&deploy);
            rows.push(Row {
                name: format!("{}-{label}", short_name(device)),
                size_mb: model.size_mb(),
                oa: eval.overall,
                macc: eval.balanced,
                latency_ms: report.latency_ms,
                mem_mb: report.peak_mem_mb,
            });
            found.push((format!("{}_{label}", short_name(device)), arch));
        }
        results.push(DeviceResults {
            device,
            rows,
            found,
        });
    }
    results
}

fn short_name(device: DeviceKind) -> &'static str {
    match device {
        DeviceKind::Rtx3080 => "RTX",
        DeviceKind::I78700K => "Intel",
        DeviceKind::JetsonTx2 => "TX2",
        DeviceKind::RaspberryPi3B => "Pi",
        DeviceKind::V100 => "V100",
    }
}

/// Prints the Table II reproduction.
pub fn run(scale: Scale) {
    crate::banner(
        "tab2",
        "HGNAS vs existing models across edge platforms (Tab. II)",
        scale,
    );
    let results = compute(scale);
    for dr in &results {
        println!("\n--- {} ---", dr.device);
        println!(
            "{:16} {:>8} {:>7} {:>7} {:>12} {:>14} {:>10}",
            "network", "size MB", "OA%", "mAcc%", "latency", "speedup", "mem MB"
        );
        let dg_lat = dr.rows[0].latency_ms;
        let dg_mem = dr.rows[0].mem_mb;
        for row in &dr.rows {
            println!(
                "{:16} {:>8.2} {:>7.1} {:>7.1} {:>10.1}ms {:>9.1}x {:>7.0} ({:>4.1}%↓)",
                row.name,
                row.size_mb,
                row.oa * 100.0,
                row.macc * 100.0,
                row.latency_ms,
                dg_lat / row.latency_ms,
                row.mem_mb,
                (1.0 - row.mem_mb / dg_mem) * 100.0
            );
        }
    }
    println!("\n(accuracies from harness-scale SynthNet40 training; latency/memory from");
    println!(" 1024-point deployment on the calibrated device simulator, as in Tab. II)");
}
