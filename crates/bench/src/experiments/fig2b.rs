//! Fig. 2(b): accuracy vs latency when reusing sampled results (KNN
//! graphs) across DGCNN layers — the redundancy observation that motivates
//! the fine-grained design space.

use crate::Scale;
use hgnas_device::DeviceKind;
use hgnas_ops::train::{evaluate, fit};
use hgnas_ops::{dgcnn, lower_edgeconv};
use hgnas_pointcloud::SynthNet40;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prints the KNN-reuse sweep.
pub fn run(scale: Scale) {
    crate::banner(
        "fig2b",
        "accuracy & latency under sampled-result reuse (Fig. 2b)",
        scale,
    );
    let task = scale.task(2);
    let ds = SynthNet40::generate(&task.dataset);
    let base_cfg = scale.dgcnn(ds.classes);
    let layers = base_cfg.num_layers();
    let gpu = DeviceKind::Rtx3080.profile();
    let fit_cfg = scale.fit();

    println!("\nDGCNN with the first R layers building their own KNN graph; layers");
    println!("beyond R reuse the last built graph (R = {layers} is vanilla DGCNN).\n");
    println!(
        "{:>3} {:>12} {:>8} {:>8}  note",
        "R", "RTX lat", "OA%", "mAcc%"
    );

    for reuse_after in (1..=layers).rev() {
        let mut cfg = base_cfg.clone();
        cfg.reuse_after = reuse_after;
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = dgcnn(&mut rng, cfg.clone());
        fit(&mut model, &ds.train, &fit_cfg);
        let eval = evaluate(&model, &ds.test, ds.classes, 3);
        // Latency of the deployed model at the paper's 1024-point setting.
        let mut sim_cfg = cfg.clone();
        sim_cfg.classes = 40;
        let lat = gpu.execute(&lower_edgeconv(&sim_cfg, 1024)).latency_ms;
        let note = if reuse_after == layers {
            "(vanilla DGCNN)"
        } else if reuse_after == 1 {
            "(single graph, max reuse)"
        } else {
            ""
        };
        println!(
            "{reuse_after:>3} {:>10.1}ms {:>8.1} {:>8.1}  {note}",
            lat,
            eval.overall * 100.0,
            eval.balanced * 100.0
        );
    }
    println!("\n(the paper's finding: latency drops steeply with reuse while accuracy");
    println!(" moves within ~1 point — redundant sampling dominates the cost)");
}
