//! Fig. 9 ablations: (a) predictor-based vs real-time-measurement search;
//! (b) multi-stage vs one-stage strategy. Both plot best objective score
//! against simulated search minutes.

use crate::Scale;
use hgnas_core::{Hgnas, LatencyMode, SearchConfig, Strategy};
use hgnas_device::DeviceKind;

fn sparkline(history: &[(f64, f64)], buckets: usize) -> String {
    if history.is_empty() {
        return "(no evaluations)".into();
    }
    let t_max = history.last().unwrap().0.max(1e-9);
    let mut line = String::new();
    for b in 1..=buckets {
        let t = t_max * b as f64 / buckets as f64;
        let score = history
            .iter()
            .take_while(|(tt, _)| *tt <= t)
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        if score.is_finite() {
            line.push_str(&format!(" {score:>6.3}"));
        } else {
            line.push_str("      -");
        }
    }

    format!(
        "final {:.3} @ {:.1} min |{}",
        history.last().unwrap().1,
        t_max,
        line
    )
}

fn isolated_stage2(mut cfg: SearchConfig) -> SearchConfig {
    // Minimal Stage 1 so the comparison isolates Stage-2 behaviour.
    cfg.ea_stage1.population = 1;
    cfg.ea_stage1.iterations = 0;
    cfg.epochs_stage1 = 1;
    cfg
}

/// Fig. 9(a): predictor vs real-time measurement.
pub fn run_a(scale: Scale) {
    crate::banner(
        "fig9a",
        "predictor-based vs real-time-measurement search (Fig. 9a)",
        scale,
    );
    let task = scale.task(5);
    for device in [DeviceKind::Rtx3080, DeviceKind::I78700K] {
        println!("\ntarget {device}: best objective over simulated search time");
        for (label, mode) in [
            ("prediction", LatencyMode::Predictor),
            ("real-time  ", LatencyMode::Measured),
        ] {
            let mut cfg = isolated_stage2(scale.search(device));
            cfg.latency_mode = mode;
            cfg.seed = 51;
            let outcome = Hgnas::new(task.clone(), cfg).run();
            println!(
                "  {label} {} (total {:.2} simulated hours)",
                sparkline(&outcome.history, 8),
                outcome.search_hours
            );
        }
    }
    println!("\n(both modes converge to similar objective scores, but every real-time");
    println!(" query pays deployment round-trips — the predictor curve finishes far");
    println!(" earlier in wall-clock, the paper's Fig. 9a message)");
}

/// Fig. 9(b): multi-stage vs one-stage strategy.
pub fn run_b(scale: Scale) {
    crate::banner(
        "fig9b",
        "multi-stage vs one-stage search strategy (Fig. 9b)",
        scale,
    );
    let task = scale.task(6);
    let device = DeviceKind::Rtx3080;
    for (label, strategy) in [
        ("multi-stage", Strategy::MultiStage),
        ("one-stage  ", Strategy::OneStage),
    ] {
        let mut cfg = scale.search(device);
        cfg.strategy = strategy;
        if strategy == Strategy::OneStage {
            // Same candidate budget; each candidate pays its own supernet.
            cfg.ea_stage2.population = cfg.ea_stage2.population.min(6);
            cfg.ea_stage2.iterations = cfg.ea_stage2.iterations.min(4);
        }
        cfg.seed = 61;
        let outcome = Hgnas::new(task.clone(), cfg).run();
        println!(
            "{label} {} ({:.2} simulated hours)",
            sparkline(&outcome.history, 8),
            outcome.search_hours
        );
    }
    println!("\n(the one-stage strategy spends supernet training on every candidate and");
    println!(" crawls; the hierarchical strategy reaches a high score within simulated");
    println!(" minutes — the paper's 'few GPU hours' claim)");
}
