//! Fig. 10: visualisation of the GNN architectures designed per device,
//! both the paper's published models and the ones our search finds.

use crate::{fig10_archs::fig10_fast, Scale};
use hgnas_core::Hgnas;
use hgnas_ops::{merge_adjacent_samples, strip_identity, OpType};

/// Prints paper-published and freshly searched architectures per device.
pub fn run(scale: Scale) {
    crate::banner(
        "fig10",
        "architectures designed per device (Fig. 10)",
        scale,
    );
    let task = scale.task(7);

    for persona in hgnas_device::PersonaRegistry::builtin().edge_targets() {
        let device = persona.base_kind();
        println!("\n=== {device} ===");
        println!("paper's published Fast model:");
        println!("{}", fig10_fast(device, task.k, task.classes()));

        let mut cfg = scale.search(device);
        cfg.beta = 0.5; // Fast flavour
        cfg.seed = 71;
        let outcome = Hgnas::new(task.clone(), cfg).run();
        let found = strip_identity(&merge_adjacent_samples(&outcome.best.architecture));
        println!(
            "our search ({:.1} ms predicted, {:.1}% one-shot accuracy):",
            outcome.best.latency_ms,
            outcome.best.supernet_accuracy * 100.0
        );
        println!("{found}");
        let knns = found.count(OpType::Sample);
        println!("(valid graph constructions after KNN-merge: {knns})");
    }
    println!("\n(the paper's observation holds: models for GPU-like targets keep few");
    println!(" valid KNN ops, the CPU model avoids aggregates, the Pi simplifies all)");
}
