//! Table I + Observation ②: the design-space inventory and the
//! hierarchical-search reduction arithmetic.

use crate::Scale;
use hgnas_core::space::DesignSpace;
use hgnas_ops::{Aggregator, ConnectFn, MessageType, SampleFn, COMBINE_DIMS};

/// Prints the design-space inventory (paper Tab. I) and size accounting.
pub fn run(scale: Scale) {
    crate::banner(
        "tab1",
        "design-space inventory (Tab. I / Observation 2)",
        scale,
    );

    println!("operation   functions");
    println!(
        "Connect     {}",
        ConnectFn::ALL.map(|c| c.to_string()).join(", ")
    );
    println!(
        "Aggregate   aggregator: {}",
        Aggregator::ALL.map(|a| a.to_string()).join(", ")
    );
    println!(
        "            message: {}",
        MessageType::ALL.map(|m| m.to_string()).join(", ")
    );
    println!(
        "Combine     {}",
        COMBINE_DIMS.map(|d| d.to_string()).join(", ")
    );
    println!(
        "Sample      {}",
        SampleFn::ALL.map(|s| s.to_string()).join(", ")
    );

    let positions = match scale {
        Scale::Paper => 12,
        Scale::Small => 8,
        Scale::Tiny => 6,
    };
    let space = DesignSpace::new(positions);
    println!("\npositions: {positions}");
    println!(
        "options per position (2 sample + 28 aggregate + 6 combine + 2 connect): {}",
        DesignSpace::options_per_position()
    );
    println!("flat fine-grained space:       {:.2e}", space.flat_size());
    if positions == 12 {
        println!(
            "paper headline ((3N)^12):      {:.2e}",
            space.paper_headline_size()
        );
    }
    println!(
        "function space (two halves):   {:.2e}",
        space.function_space_size() as f64
    );
    println!(
        "operation space (4^positions): {:.2e}",
        space.operation_space_size() as f64
    );
    println!(
        "hierarchical total:            {:.2e}  (paper: 4.2e12 -> 1.7e7 for 12 positions)",
        space.hierarchical_size() as f64
    );
}
