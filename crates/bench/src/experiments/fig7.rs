//! Fig. 7: the accuracy/speedup trade-off as the α:β scaling ratio sweeps.

use crate::Scale;
use hgnas_core::Hgnas;
use hgnas_device::DeviceKind;
use hgnas_ops::train::{evaluate, fit};
use hgnas_ops::GnnModel;
use hgnas_pointcloud::SynthNet40;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prints the α:β sweep on the RTX3080 target.
pub fn run(scale: Scale) {
    crate::banner("fig7", "accuracy vs speedup across α:β (Fig. 7)", scale);
    let device = DeviceKind::Rtx3080;
    let task = scale.task(4);
    let ds = SynthNet40::generate(&task.dataset);
    let fit_cfg = scale.fit();
    let ratios: &[f64] = match scale {
        Scale::Tiny => &[0.2, 1.0, 5.0],
        _ => &[0.1, 0.2, 1.0, 2.0, 5.0, 10.0],
    };

    println!(
        "\n{:>6} {:>8} {:>8} {:>10} {:>9}",
        "α:β", "OA%", "mAcc%", "latency", "speedup"
    );
    for &ratio in ratios {
        let mut cfg = scale.search(device);
        // Keep α+β fixed while sweeping the ratio, as in Fig. 7.
        let total = cfg.alpha + cfg.beta;
        cfg.beta = total / (1.0 + ratio);
        cfg.alpha = total - cfg.beta;
        cfg.seed = 31;
        let outcome = Hgnas::new(task.clone(), cfg).run();

        let mut rng = StdRng::seed_from_u64(33);
        let mut model = GnnModel::new(
            &mut rng,
            outcome.best.architecture.clone(),
            &task.head_hidden,
        );
        fit(&mut model, &ds.train, &fit_cfg);
        let eval = evaluate(&model, &ds.test, ds.classes, 3);

        // Deploy at the paper operating point for the speedup axis.
        let mut deploy = outcome.best.architecture.clone();
        deploy.k = 20;
        let lat = device
            .profile()
            .execute(&deploy.lower(1024, &[128]))
            .latency_ms;
        let dgcnn_ref = {
            use hgnas_ops::{lower_edgeconv, DgcnnConfig};
            device
                .profile()
                .execute(&lower_edgeconv(&DgcnnConfig::paper(40), 1024))
                .latency_ms
        };
        println!(
            "{ratio:>6.1} {:>8.1} {:>8.1} {:>8.1}ms {:>8.1}x",
            eval.overall * 100.0,
            eval.balanced * 100.0,
            lat,
            dgcnn_ref / lat
        );
    }
    println!("\n(small α:β favours speed; large α:β favours accuracy — the paper's");
    println!(" Fig. 7 shows the same monotone trade-off between the two curves)");
}
