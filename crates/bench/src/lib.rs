//! Experiment harnesses regenerating every table and figure of the HGNAS
//! paper, plus shared scaffolding for the criterion micro-benches.
//!
//! Each experiment lives in [`experiments`] as a `run(scale)` function and
//! has a matching binary (`cargo run -p hgnas-bench --release --bin fig1`
//! etc.). The `paper_experiments` bench target replays all of them at tiny
//! scale under `cargo bench`. Scale is chosen with the `HGNAS_SCALE`
//! environment variable (`tiny` | `small` | `paper`), defaulting to `small`
//! for binaries.

pub mod experiments;
pub mod fig10_archs;
pub mod record;

use hgnas_core::{SearchConfig, TaskConfig};
use hgnas_device::DeviceKind;
use hgnas_ops::train::FitConfig;
use hgnas_ops::DgcnnConfig;
use hgnas_predictor::PredictorConfig;

/// Experiment scale, selected via `HGNAS_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-per-experiment; used by `cargo bench`.
    Tiny,
    /// Tens of seconds to a few minutes; the binary default.
    #[default]
    Small,
    /// The paper's hyperparameters (GPU-hours-equivalent of simulated work;
    /// trainable parts take correspondingly long on a CPU host).
    Paper,
}

impl Scale {
    /// Reads `HGNAS_SCALE` (`tiny`/`small`/`paper`), defaulting to `Small`.
    pub fn from_env() -> Scale {
        match std::env::var("HGNAS_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// The task configuration at this scale.
    pub fn task(self, seed: u64) -> TaskConfig {
        match self {
            Scale::Tiny => TaskConfig::tiny(seed),
            Scale::Small => TaskConfig::small(seed),
            Scale::Paper => TaskConfig::paper(seed),
        }
    }

    /// Search configuration for a device at this scale.
    pub fn search(self, device: DeviceKind) -> SearchConfig {
        match self {
            Scale::Tiny => {
                let mut cfg = SearchConfig::fast(device);
                cfg.ea_stage1.population = 3;
                cfg.ea_stage1.iterations = 1;
                cfg.ea_stage2.population = 6;
                cfg.ea_stage2.iterations = 3;
                cfg.epochs_stage1 = 1;
                cfg.epochs_stage2 = 2;
                cfg.eval_clouds = 20;
                cfg.predictor = PredictorConfig {
                    train_samples: 80,
                    val_samples: 40,
                    epochs: 8,
                    lr: 3e-3,
                    gcn_dims: vec![16, 16],
                    mlp_hidden: vec![12],
                    seed: 1,
                    global_node: true,
                    batch: 1,
                };
                cfg
            }
            Scale::Small => SearchConfig::fast(device),
            Scale::Paper => SearchConfig::paper(device),
        }
    }

    /// Training budget for stand-alone models at this scale.
    pub fn fit(self) -> FitConfig {
        match self {
            Scale::Tiny => FitConfig::quick().with_epochs(6),
            Scale::Small => FitConfig::quick().with_epochs(12),
            Scale::Paper => FitConfig::quick().with_epochs(200),
        }
    }

    /// DGCNN baseline configuration at this scale.
    pub fn dgcnn(self, classes: usize) -> DgcnnConfig {
        match self {
            Scale::Paper => DgcnnConfig::paper(classes),
            _ => DgcnnConfig::small(classes),
        }
    }

    /// Point count used for device-simulator tables (always the paper's
    /// 1024 where only simulation is involved).
    pub fn sim_points(self) -> usize {
        1024
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        })
    }
}

/// Prints the standard harness banner.
pub fn banner(id: &str, what: &str, scale: Scale) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("scale: {scale} (set HGNAS_SCALE=tiny|small|paper)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_round_trips() {
        assert_eq!(Scale::Tiny.to_string(), "tiny");
        assert_eq!(Scale::default(), Scale::Small);
        assert_eq!(Scale::Paper.task(1).positions, 12);
        assert_eq!(Scale::Tiny.task(1).positions, 6);
    }
}
