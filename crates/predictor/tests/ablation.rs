//! Ablation: the paper's global node (Sec. III-D) materially helps the
//! predictor — the plain chain abstraction is too sparse and lacks the
//! input-data properties.

use hgnas_device::DeviceKind;
use hgnas_ops::Architecture;
use hgnas_predictor::{
    arch_to_graph_with, generate_dataset, LatencyPredictor, PredictorConfig, PredictorContext,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> PredictorContext {
    PredictorContext {
        positions: 8,
        points: 128,
        k: 10,
        classes: 4,
        head_hidden: vec![16],
    }
}

fn cfg(global_node: bool) -> PredictorConfig {
    PredictorConfig {
        train_samples: 300,
        val_samples: 100,
        epochs: 15,
        lr: 3e-3,
        gcn_dims: vec![32, 32],
        mlp_hidden: vec![24],
        seed: 5,
        global_node,
        batch: 1,
    }
}

#[test]
fn graph_without_global_node_is_smaller_and_sparser() {
    let mut rng = StdRng::seed_from_u64(1);
    let arch = Architecture::random(&mut rng, 8, 10, 4);
    let with = arch_to_graph_with(&arch, 128, true);
    let without = arch_to_graph_with(&arch, 128, false);
    assert_eq!(with.graph.len(), without.graph.len() + 1);
    // The global node contributes 2·(n-1) edges.
    assert_eq!(
        with.graph.edge_count(),
        without.graph.edge_count() + 2 * (with.graph.len() - 1)
    );
    assert!(with.graph.density() > without.graph.density());
}

#[test]
fn global_node_improves_validation_mape() {
    let (_, with_stats) = LatencyPredictor::train(DeviceKind::Rtx3080, &ctx(), &cfg(true));
    let (_, without_stats) = LatencyPredictor::train(DeviceKind::Rtx3080, &ctx(), &cfg(false));
    assert!(
        with_stats.val_mape < without_stats.val_mape,
        "global node did not help: with {:.3} vs without {:.3}",
        with_stats.val_mape,
        without_stats.val_mape
    );
}

#[test]
fn ablated_predictor_still_produces_finite_predictions() {
    let (p, _) = LatencyPredictor::train(DeviceKind::JetsonTx2, &ctx(), &cfg(false));
    let profile = DeviceKind::JetsonTx2.profile();
    let samples = generate_dataset(&profile, 8, 128, 10, 4, &[16], 20, 77);
    let eval = p.evaluate(&samples);
    assert!(eval.mape.is_finite());
    assert!(eval.pairs.iter().all(|(pred, _)| pred.is_finite()));
}
