//! Architecture → graph abstraction and node-feature encoding.
//!
//! Layout of the per-node feature vector (width [`FEATURE_WIDTH`] = 39):
//!
//! | slots | meaning |
//! |-------|---------|
//! | 0–6   | node-kind one-hot: Input, Output, Global, Sample, Aggregate, Combine, Connect (the paper's 7-dim op encoding) |
//! | 7–22  | function descriptor (16): aggregator one-hot (7–10), message one-hot (11–17), sample fn (18–19), connect fn (20–21), combine width / 256 (22) |
//! | 23–38 | graph/data properties (16), non-zero only on the global node |
//!
//! The paper uses a 9-dim function one-hot, which cannot distinguish the
//! 28 aggregate combinations; we widen to a 16-dim multi-hot (deviation #1
//! in `DESIGN.md`). The global-property vector is 16-dim as in the paper.

use hgnas_graph::{AdjNorm, DiGraph};
use hgnas_ops::{Architecture, ConnectFn, Operation};
use hgnas_tensor::Tensor;

/// Width of every node feature vector.
pub const FEATURE_WIDTH: usize = 39;

const KIND_INPUT: usize = 0;
const KIND_OUTPUT: usize = 1;
const KIND_GLOBAL: usize = 2;
const KIND_SAMPLE: usize = 3;
const KIND_AGGREGATE: usize = 4;
const KIND_COMBINE: usize = 5;
const KIND_CONNECT: usize = 6;

const FUNC_BASE: usize = 7;
const PROP_BASE: usize = 23;

/// An abstracted architecture graph ready for the GCN predictor.
#[derive(Debug, Clone)]
pub struct ArchGraph {
    /// The dataflow graph (input, ops…, output, global — in that node
    /// order).
    pub graph: DiGraph,
    /// `[nodes, FEATURE_WIDTH]` node features.
    pub features: Tensor,
}

impl ArchGraph {
    /// Dense symmetric-normalised adjacency with self loops, as the GCN
    /// layers consume it.
    pub fn adjacency(&self) -> Tensor {
        let n = self.graph.len();
        Tensor::from_vec(self.graph.adjacency(AdjNorm::Symmetric, true), &[n, n])
    }
}

/// Data/context properties encoded into the global node: everything the
/// latency of an architecture depends on besides the ops themselves.
fn global_properties(arch: &Architecture, points: usize) -> [f32; 16] {
    let mut p = [0.0f32; 16];
    let n_ops = arch.len() as f32;
    p[0] = points as f32 / 2048.0;
    p[1] = arch.k as f32 / 32.0;
    p[2] = n_ops / 16.0;
    p[3] = arch.count(hgnas_ops::OpType::Sample) as f32 / n_ops;
    p[4] = arch.count(hgnas_ops::OpType::Aggregate) as f32 / n_ops;
    p[5] = arch.count(hgnas_ops::OpType::Combine) as f32 / n_ops;
    p[6] = arch.count(hgnas_ops::OpType::Connect) as f32 / n_ops;
    p[7] = (points as f32).ln() / 8.0;
    p[8] = arch.classes as f32 / 40.0;
    // Feature-width trace summary: mean and max width relative to 256, a
    // strong latency covariate.
    let dims = arch.dim_trace(3);
    let max_w = dims.iter().copied().max().unwrap_or(3) as f32;
    let mean_w = dims.iter().sum::<usize>() as f32 / dims.len() as f32;
    p[9] = (max_w / 256.0).min(4.0);
    p[10] = (mean_w / 256.0).min(4.0);
    p[11] = (points * arch.k) as f32 / 65536.0;
    p[12] = 1.0; // bias
    p
}

/// Abstracts an architecture into the predictor's input graph.
///
/// Nodes: `input`, one per operation (in pipeline order), `output`, and the
/// `global` node wired to every other node in both directions. Edges follow
/// dataflow: the sequential chain plus one extra edge per skip connection
/// from its merge source.
pub fn arch_to_graph(arch: &Architecture, points: usize) -> ArchGraph {
    arch_to_graph_with(arch, points, true)
}

/// [`arch_to_graph`] with the global node optionally removed — the ablation
/// behind the paper's claim that "the plain abstraction … is too sparse for
/// the predictor" (Sec. III-D). Without the global node the graph keeps only
/// the sequential dataflow chain and loses the input-data properties.
pub fn arch_to_graph_with(arch: &Architecture, points: usize, global_node: bool) -> ArchGraph {
    if global_node {
        return build(arch, points, true);
    }
    build(arch, points, false)
}

fn build(arch: &Architecture, points: usize, with_global: bool) -> ArchGraph {
    let n_ops = arch.len();
    let n_nodes = n_ops + 2 + usize::from(with_global);
    let input = 0usize;
    let output = n_ops + 1;
    let global = n_ops + 2; // only a valid node when `with_global`

    let mut g = DiGraph::new(n_nodes);
    // Sequential dataflow chain.
    for i in 0..n_ops {
        g.add_edge(if i == 0 { input } else { i }, i + 1);
    }
    g.add_edge(n_ops, output);
    // Skip connections: each Connect(Skip) additionally receives dataflow
    // from the previous skip merge point (or the input).
    let mut skip_src = input;
    for (i, op) in arch.ops.iter().enumerate() {
        if matches!(op, Operation::Connect(ConnectFn::Skip)) {
            let node = i + 1;
            if skip_src + 1 < node {
                g.add_edge(skip_src, node);
            }
            skip_src = node;
        }
    }
    // Global node, bidirectional to improve connectivity (paper Fig. 5).
    if with_global {
        for v in 0..n_nodes - 1 {
            g.add_edge(global, v);
            g.add_edge(v, global);
        }
    }

    let mut feats = vec![0.0f32; n_nodes * FEATURE_WIDTH];
    let mut set = |node: usize, slot: usize, v: f32| {
        feats[node * FEATURE_WIDTH + slot] = v;
    };
    set(input, KIND_INPUT, 1.0);
    set(output, KIND_OUTPUT, 1.0);
    if with_global {
        set(global, KIND_GLOBAL, 1.0);
    }
    for (i, op) in arch.ops.iter().enumerate() {
        let node = i + 1;
        match *op {
            Operation::Sample(f) => {
                set(node, KIND_SAMPLE, 1.0);
                set(node, FUNC_BASE + 11 + f.index(), 1.0);
            }
            Operation::Aggregate { agg, msg } => {
                set(node, KIND_AGGREGATE, 1.0);
                set(node, FUNC_BASE + agg.index(), 1.0);
                set(node, FUNC_BASE + 4 + msg.index(), 1.0);
            }
            Operation::Combine { dim } => {
                set(node, KIND_COMBINE, 1.0);
                set(node, FUNC_BASE + 15, dim as f32 / 256.0);
            }
            Operation::Connect(c) => {
                set(node, KIND_CONNECT, 1.0);
                set(node, FUNC_BASE + 13 + c.index(), 1.0);
            }
        }
    }
    if with_global {
        for (j, v) in global_properties(arch, points).iter().enumerate() {
            set(global, PROP_BASE + j, *v);
        }
    }

    ArchGraph {
        graph: g,
        features: Tensor::from_vec(feats, &[n_nodes, FEATURE_WIDTH]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_ops::{Aggregator, MessageType, SampleFn};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arch() -> Architecture {
        Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                Operation::Combine { dim: 64 },
                Operation::Aggregate {
                    agg: Aggregator::Max,
                    msg: MessageType::TargetRel,
                },
                Operation::Connect(ConnectFn::Skip),
            ],
            10,
            4,
        )
    }

    #[test]
    fn node_count_is_ops_plus_three() {
        let ag = arch_to_graph(&arch(), 128);
        assert_eq!(ag.graph.len(), 4 + 3);
        assert_eq!(ag.features.dims(), &[7, FEATURE_WIDTH]);
    }

    #[test]
    fn global_node_connects_everything() {
        let ag = arch_to_graph(&arch(), 128);
        let global = ag.graph.len() - 1;
        // out-degree counts the global->v edges.
        assert_eq!(ag.graph.out_degree(global), ag.graph.len() - 1);
        assert_eq!(ag.graph.in_degree(global), ag.graph.len() - 1);
    }

    #[test]
    fn features_one_hot_per_kind() {
        let ag = arch_to_graph(&arch(), 128);
        // Node 1 is the sample op.
        let row = &ag.features.data()[FEATURE_WIDTH..2 * FEATURE_WIDTH];
        assert_eq!(row[KIND_SAMPLE], 1.0);
        assert_eq!(row[FUNC_BASE + 11 + SampleFn::Knn.index()], 1.0);
        // Combine node encodes width/256.
        let row = &ag.features.data()[2 * FEATURE_WIDTH..3 * FEATURE_WIDTH];
        assert_eq!(row[FUNC_BASE + 15], 0.25);
    }

    #[test]
    fn properties_change_with_points() {
        let a = arch();
        let g1 = arch_to_graph(&a, 128);
        let g2 = arch_to_graph(&a, 1024);
        assert_ne!(g1.features.data(), g2.features.data());
        // Op encodings identical, only the global row differs.
        let w = FEATURE_WIDTH;
        let n = g1.graph.len();
        assert_eq!(
            &g1.features.data()[..(n - 1) * w],
            &g2.features.data()[..(n - 1) * w]
        );
    }

    #[test]
    fn random_archs_encode_without_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = Architecture::random(&mut rng, 12, 20, 40);
            let g = arch_to_graph(&a, 1024);
            assert!(g.features.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn adjacency_is_normalised_and_symmetric() {
        let ag = arch_to_graph(&arch(), 256);
        let a = ag.adjacency();
        let n = ag.graph.len();
        for i in 0..n {
            for j in 0..n {
                assert!((a.at2(i, j) - a.at2(j, i)).abs() < 1e-6);
            }
            assert!(a.at2(i, i) > 0.0, "self loop row {i}");
        }
    }
}
