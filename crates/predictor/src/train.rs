//! Training and evaluating the latency predictor.

use crate::dataset::{generate_dataset, LabelledArch};
use crate::features::arch_to_graph_with;
use crate::model::PredictorModel;
use hgnas_autograd::Tape;
use hgnas_device::{DeviceKind, DeviceProfile};
use hgnas_nn::metrics::{error_bound_accuracy, mape};
use hgnas_nn::{Module, Optimizer};
use hgnas_ops::Architecture;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The task context architectures are measured in (mirrors the search's
/// task configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorContext {
    /// Supernet positions sampled for training data.
    pub positions: usize,
    /// Points per cloud.
    pub points: usize,
    /// Neighbour fanout.
    pub k: usize,
    /// Classifier classes.
    pub classes: usize,
    /// Classifier hidden widths (needed to lower candidates).
    pub head_hidden: Vec<usize>,
}

impl PredictorContext {
    /// Paper-scale context: 12 positions, 1024 points, k=20, 40 classes.
    pub fn paper() -> Self {
        PredictorContext {
            positions: 12,
            points: 1024,
            k: 20,
            classes: 40,
            head_hidden: vec![128],
        }
    }

    /// Reduced-scale context for fast harnesses.
    pub fn small() -> Self {
        PredictorContext {
            positions: 8,
            points: 128,
            k: 10,
            classes: 10,
            head_hidden: vec![48],
        }
    }
}

/// Predictor training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Training samples (paper: 21 000).
    pub train_samples: usize,
    /// Held-out validation samples (paper: 9 000).
    pub val_samples: usize,
    /// Training epochs (paper: 250).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// GCN hidden widths (paper: 256, 512, 512).
    pub gcn_dims: Vec<usize>,
    /// MLP hidden widths (paper: 256, 128).
    pub mlp_hidden: Vec<usize>,
    /// RNG seed for sampling, init and shuffling.
    pub seed: u64,
    /// Include the global node in the architecture graph (paper default).
    /// Disabling it is the sparsity ablation from Sec. III-D.
    pub global_node: bool,
}

impl PredictorConfig {
    /// The paper's settings (Sec. IV-A).
    pub fn paper() -> Self {
        PredictorConfig {
            train_samples: 21_000,
            val_samples: 9_000,
            epochs: 250,
            lr: 1e-3,
            gcn_dims: vec![256, 512, 512],
            mlp_hidden: vec![256, 128],
            seed: 0,
            global_node: true,
        }
    }

    /// Reduced settings: trains in a few seconds on a CPU while staying
    /// well under 20 % MAPE on the quiet devices.
    pub fn small() -> Self {
        PredictorConfig {
            train_samples: 600,
            val_samples: 200,
            epochs: 30,
            lr: 2e-3,
            gcn_dims: vec![48, 48],
            mlp_hidden: vec![32],
            seed: 0,
            global_node: true,
        }
    }
}

/// What training observed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean training MAPE of the final epoch.
    pub train_mape: f64,
    /// Validation MAPE (Fig. 8 reports ~0.06 GPU/CPU/TX2, ~0.19 Pi).
    pub val_mape: f64,
    /// Fraction of validation predictions within the 10 % error bound.
    pub val_within_10pct: f64,
    /// Training set size actually used.
    pub train_size: usize,
}

/// Evaluation output: enough to draw a Fig. 8 scatter.
#[derive(Debug, Clone)]
pub struct PredictorEval {
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Fraction within the 10 % relative-error bound.
    pub within_10pct: f64,
    /// `(predicted_ms, measured_ms)` pairs.
    pub pairs: Vec<(f64, f64)>,
}

/// A trained per-device latency predictor.
///
/// Predictions are made in a normalised space (labels divided by the
/// training-set mean) because MAPE is scale-free but optimisation is not;
/// the scale is folded back in [`LatencyPredictor::predict_ms`].
#[derive(Debug)]
pub struct LatencyPredictor {
    device: DeviceKind,
    model: PredictorModel,
    scale_ms: f64,
    context: PredictorContext,
    global_node: bool,
}

impl LatencyPredictor {
    /// Generates a labelled dataset on `device` and trains a predictor with
    /// MAPE loss (paper Sec. IV-A). Returns the predictor plus held-out
    /// statistics.
    pub fn train(
        device: DeviceKind,
        ctx: &PredictorContext,
        cfg: &PredictorConfig,
    ) -> (Self, TrainStats) {
        let profile = device.profile();
        let total = cfg.train_samples + cfg.val_samples;
        let data = generate_dataset(
            &profile,
            ctx.positions,
            ctx.points,
            ctx.k,
            ctx.classes,
            &ctx.head_hidden,
            total,
            cfg.seed.wrapping_add(0x5eed),
        );
        let (train, val) = data.split_at(cfg.train_samples.min(data.len()));

        let scale_ms =
            (train.iter().map(|s| s.latency_ms).sum::<f64>() / train.len().max(1) as f64).max(1e-6);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = PredictorModel::new(&mut rng, &cfg.gcn_dims, &cfg.mlp_hidden);
        let mut opt = Optimizer::adam(cfg.lr);

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut train_mape = f64::NAN;
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for &i in &order {
                let sample = &train[i];
                let graph = arch_to_graph_with(&sample.arch, ctx.points, cfg.global_node);
                let target = (sample.latency_ms / scale_ms) as f32;
                let mut tape = Tape::new();
                let out = model.forward(&mut tape, &graph);
                let loss = tape.mape_loss(out, &[target]);
                epoch_loss += tape.value(loss).item() as f64;
                tape.backward(loss);
                model.apply_updates(&tape, &mut opt);
            }
            train_mape = epoch_loss / train.len().max(1) as f64;
        }

        let predictor = LatencyPredictor {
            device,
            model,
            scale_ms,
            context: ctx.clone(),
            global_node: cfg.global_node,
        };
        let eval = predictor.evaluate(val);
        let stats = TrainStats {
            train_mape,
            val_mape: eval.mape,
            val_within_10pct: eval.within_10pct,
            train_size: train.len(),
        };
        (predictor, stats)
    }

    /// The device this predictor perceives.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// The context (points, k, …) predictions are made in.
    pub fn context(&self) -> &PredictorContext {
        &self.context
    }

    /// Predicts the latency of `arch` on the target device, in
    /// milliseconds. This is the paper's "perceive a candidate in
    /// milliseconds" path — no lowering, no simulation, one GCN forward.
    pub fn predict_ms(&self, arch: &Architecture) -> f64 {
        let graph = arch_to_graph_with(arch, self.context.points, self.global_node);
        let mut tape = Tape::new();
        let out = self.model.forward_frozen(&mut tape, &graph);
        (tape.value(out).item() as f64 * self.scale_ms).max(0.0)
    }

    /// Evaluates against labelled samples, producing Fig. 8 quantities.
    pub fn evaluate(&self, samples: &[LabelledArch]) -> PredictorEval {
        let pairs: Vec<(f64, f64)> = samples
            .iter()
            .map(|s| (self.predict_ms(&s.arch), s.latency_ms))
            .collect();
        let pred: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let truth: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        PredictorEval {
            mape: mape(&pred, &truth),
            within_10pct: error_bound_accuracy(&pred, &truth, 0.10),
            pairs,
        }
    }

    /// Ground-truth measurement helper (used by ablations comparing
    /// predictor-based and measurement-based search).
    pub fn profile(&self) -> DeviceProfile {
        self.device.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PredictorConfig {
        PredictorConfig {
            train_samples: 120,
            val_samples: 60,
            epochs: 12,
            lr: 3e-3,
            gcn_dims: vec![24, 24],
            mlp_hidden: vec![16],
            seed: 1,
            global_node: true,
        }
    }

    fn tiny_ctx() -> PredictorContext {
        PredictorContext {
            positions: 6,
            points: 128,
            k: 10,
            classes: 4,
            head_hidden: vec![16],
        }
    }

    #[test]
    fn predictor_learns_better_than_mean_baseline() {
        let (p, stats) = LatencyPredictor::train(DeviceKind::Rtx3080, &tiny_ctx(), &tiny_cfg());
        // Baseline: always predicting the training mean. Its MAPE on the
        // validation set bounds what "learned nothing" looks like.
        let profile = DeviceKind::Rtx3080.profile();
        let val = generate_dataset(&profile, 6, 128, 10, 4, &[16], 60, 999);
        let mean_pred: Vec<f64> = vec![p.scale_ms; val.len()];
        let truth: Vec<f64> = val.iter().map(|s| s.latency_ms).collect();
        let baseline = mape(&mean_pred, &truth);
        let eval = p.evaluate(&val);
        assert!(
            eval.mape < baseline,
            "predictor {:.3} not better than mean baseline {:.3} (train stats {stats:?})",
            eval.mape,
            baseline
        );
    }

    #[test]
    fn predictions_positive_and_finite() {
        let (p, _) = LatencyPredictor::train(DeviceKind::JetsonTx2, &tiny_ctx(), &tiny_cfg());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a = Architecture::random(&mut rng, 6, 10, 4);
            let ms = p.predict_ms(&a);
            assert!(ms.is_finite() && ms >= 0.0, "prediction {ms}");
        }
    }

    #[test]
    fn prediction_is_fast_single_forward() {
        let (p, _) = LatencyPredictor::train(DeviceKind::Rtx3080, &tiny_ctx(), &tiny_cfg());
        let mut rng = StdRng::seed_from_u64(6);
        let a = Architecture::random(&mut rng, 6, 10, 4);
        let t0 = std::time::Instant::now();
        for _ in 0..100 {
            p.predict_ms(&a);
        }
        let per_call = t0.elapsed().as_secs_f64() / 100.0;
        // Paper claim: "within milliseconds". Allow generous CI headroom.
        assert!(per_call < 0.05, "predict_ms took {per_call:.4}s");
    }
}
