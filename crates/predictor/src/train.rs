//! Training and evaluating the latency predictor.

use crate::dataset::{generate_dataset, LabelledArch};
use crate::features::arch_to_graph_with;
use crate::model::PredictorModel;
use hgnas_autograd::Tape;
use hgnas_device::{DeviceKind, DeviceProfile};
use hgnas_nn::metrics::{error_bound_accuracy, mape};
use hgnas_nn::{Module, Optimizer};
use hgnas_ops::Architecture;
use hgnas_tensor::threads::with_kernel_threads;
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The task context architectures are measured in (mirrors the search's
/// task configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorContext {
    /// Supernet positions sampled for training data.
    pub positions: usize,
    /// Points per cloud.
    pub points: usize,
    /// Neighbour fanout.
    pub k: usize,
    /// Classifier classes.
    pub classes: usize,
    /// Classifier hidden widths (needed to lower candidates).
    pub head_hidden: Vec<usize>,
}

impl PredictorContext {
    /// Paper-scale context: 12 positions, 1024 points, k=20, 40 classes.
    pub fn paper() -> Self {
        PredictorContext {
            positions: 12,
            points: 1024,
            k: 20,
            classes: 40,
            head_hidden: vec![128],
        }
    }

    /// Reduced-scale context for fast harnesses.
    pub fn small() -> Self {
        PredictorContext {
            positions: 8,
            points: 128,
            k: 10,
            classes: 10,
            head_hidden: vec![48],
        }
    }
}

/// Predictor training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Training samples (paper: 21 000).
    pub train_samples: usize,
    /// Held-out validation samples (paper: 9 000).
    pub val_samples: usize,
    /// Training epochs (paper: 250).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// GCN hidden widths (paper: 256, 512, 512).
    pub gcn_dims: Vec<usize>,
    /// MLP hidden widths (paper: 256, 128).
    pub mlp_hidden: Vec<usize>,
    /// RNG seed for sampling, init and shuffling.
    pub seed: u64,
    /// Include the global node in the architecture graph (paper default).
    /// Disabling it is the sparsity ablation from Sec. III-D.
    pub global_node: bool,
    /// Samples per optimizer step (mini-batch gradient accumulation).
    /// `1` reproduces the original per-sample SGD numerics exactly; larger
    /// batches accumulate (and average) per-sample gradients, which is what
    /// lets the epoch loop fan samples across the kernel thread budget.
    /// Results are bit-identical at any thread count for any batch size.
    pub batch: usize,
}

impl PredictorConfig {
    /// The paper's settings (Sec. IV-A).
    pub fn paper() -> Self {
        PredictorConfig {
            train_samples: 21_000,
            val_samples: 9_000,
            epochs: 250,
            lr: 1e-3,
            gcn_dims: vec![256, 512, 512],
            mlp_hidden: vec![256, 128],
            seed: 0,
            global_node: true,
            batch: 8,
        }
    }

    /// Reduced settings: trains in a few seconds on a CPU while staying
    /// well under 20 % MAPE on the quiet devices.
    pub fn small() -> Self {
        PredictorConfig {
            train_samples: 600,
            val_samples: 200,
            epochs: 30,
            lr: 2e-3,
            gcn_dims: vec![48, 48],
            mlp_hidden: vec![32],
            seed: 0,
            global_node: true,
            batch: 1,
        }
    }
}

/// What training observed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean training MAPE of the final epoch.
    pub train_mape: f64,
    /// Validation MAPE (Fig. 8 reports ~0.06 GPU/CPU/TX2, ~0.19 Pi).
    pub val_mape: f64,
    /// Fraction of validation predictions within the 10 % error bound.
    pub val_within_10pct: f64,
    /// Training set size actually used.
    pub train_size: usize,
}

/// Evaluation output: enough to draw a Fig. 8 scatter.
#[derive(Debug, Clone)]
pub struct PredictorEval {
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Fraction within the 10 % relative-error bound.
    pub within_10pct: f64,
    /// `(predicted_ms, measured_ms)` pairs.
    pub pairs: Vec<(f64, f64)>,
}

/// A trained per-device latency predictor.
///
/// Predictions are made in a normalised space (labels divided by the
/// training-set mean) because MAPE is scale-free but optimisation is not;
/// the scale is folded back in [`LatencyPredictor::predict_ms`].
#[derive(Debug)]
pub struct LatencyPredictor {
    device: DeviceKind,
    model: PredictorModel,
    scale_ms: f64,
    context: PredictorContext,
    global_node: bool,
    gcn_dims: Vec<usize>,
    mlp_hidden: Vec<usize>,
}

/// A serialisable image of a trained predictor: geometry, normalisation
/// scale, held-out statistics and raw weight tensors. Round-tripping
/// through a snapshot reproduces predictions bit-for-bit, which is what
/// lets an artifact store skip predictor training on warm starts.
#[derive(Debug, Clone)]
pub struct PredictorSnapshot {
    /// The device the predictor perceives.
    pub device: DeviceKind,
    /// Task context predictions are made in.
    pub context: PredictorContext,
    /// Whether the architecture graph includes the global node.
    pub global_node: bool,
    /// GCN hidden widths.
    pub gcn_dims: Vec<usize>,
    /// MLP hidden widths.
    pub mlp_hidden: Vec<usize>,
    /// Label normalisation scale, ms.
    pub scale_ms: f64,
    /// Held-out statistics observed when the predictor was trained.
    pub stats: TrainStats,
    /// Weight tensors in [`hgnas_nn::Module::params`] order.
    pub weights: Vec<Tensor>,
}

/// Per-sample loss and gradients (in [`hgnas_nn::Module::params`] order)
/// produced by one forward/backward pass.
type SampleGrads = (f64, Vec<Option<Tensor>>);

/// One forward/backward pass for `sample` against `model`, returning the
/// loss and per-parameter gradients. Pure in `model`'s weights, so it can
/// run against the live model or a worker's clone interchangeably.
fn sample_grads(
    model: &PredictorModel,
    sample: &LabelledArch,
    points: usize,
    global_node: bool,
    scale_ms: f64,
) -> SampleGrads {
    let graph = arch_to_graph_with(&sample.arch, points, global_node);
    let target = (sample.latency_ms / scale_ms) as f32;
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, &graph);
    let loss = tape.mape_loss(out, &[target]);
    let l = tape.value(loss).item() as f64;
    tape.backward(loss);
    let grads = model.params().iter().map(|p| p.take_grad(&tape)).collect();
    (l, grads)
}

/// Computes `sample_grads` for every sample of one mini-batch, fanning the
/// samples across up to `threads` workers (each worker takes a private
/// clone of the model, so tape bindings never race). Results come back in
/// submission order regardless of scheduling, and the thread budget is
/// split between workers and their matmul kernels exactly like the
/// candidate evaluator does — so the returned values are bit-identical for
/// any `threads`.
fn batch_grads(
    model: &PredictorModel,
    train: &[LabelledArch],
    chunk: &[usize],
    points: usize,
    global_node: bool,
    scale_ms: f64,
    threads: usize,
) -> Vec<SampleGrads> {
    let workers = threads.clamp(1, chunk.len());
    if workers == 1 {
        return chunk
            .iter()
            .map(|&i| sample_grads(model, &train[i], points, global_node, scale_ms))
            .collect();
    }
    let per = chunk.len().div_ceil(workers);
    let workers = chunk.len().div_ceil(per);
    let base_budget = threads / workers;
    let spare = threads % workers;
    let mut out: Vec<Option<SampleGrads>> = (0..chunk.len()).map(|_| None).collect();
    crossbeam::scope(|s| {
        for (w, (idx_chunk, out_chunk)) in chunk.chunks(per).zip(out.chunks_mut(per)).enumerate() {
            let kernel_budget = (base_budget + usize::from(w < spare)).max(1);
            s.spawn(move |_| {
                let local = model.clone();
                with_kernel_threads(kernel_budget, || {
                    for (&i, slot) in idx_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(sample_grads(
                            &local,
                            &train[i],
                            points,
                            global_node,
                            scale_ms,
                        ));
                    }
                });
            });
        }
    })
    .expect("predictor training worker panicked");
    out.into_iter()
        .map(|s| s.expect("every sample slot is filled by its worker"))
        .collect()
}

impl LatencyPredictor {
    /// Generates a labelled dataset on `device` and trains a predictor with
    /// MAPE loss (paper Sec. IV-A). Returns the predictor plus held-out
    /// statistics.
    pub fn train(
        device: DeviceKind,
        ctx: &PredictorContext,
        cfg: &PredictorConfig,
    ) -> (Self, TrainStats) {
        Self::train_with_profile(&device.profile(), ctx, cfg)
    }

    /// Trains against an explicit device profile rather than a builtin
    /// kind — the entry point custom device personas use. The predictor's
    /// perceived [`DeviceKind`] is the profile's base kind (kind-keyed
    /// artifacts keep working); callers that juggle several personas over
    /// one base kind must disambiguate them externally, e.g. via scenario
    /// fingerprints.
    pub fn train_with_profile(
        profile: &DeviceProfile,
        ctx: &PredictorContext,
        cfg: &PredictorConfig,
    ) -> (Self, TrainStats) {
        let device = profile.kind;
        let total = cfg.train_samples + cfg.val_samples;
        let data = generate_dataset(
            profile,
            ctx.positions,
            ctx.points,
            ctx.k,
            ctx.classes,
            &ctx.head_hidden,
            total,
            cfg.seed.wrapping_add(0x5eed),
        );
        let (train, val) = data.split_at(cfg.train_samples.min(data.len()));

        let scale_ms =
            (train.iter().map(|s| s.latency_ms).sum::<f64>() / train.len().max(1) as f64).max(1e-6);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = PredictorModel::new(&mut rng, &cfg.gcn_dims, &cfg.mlp_hidden);
        let mut opt = Optimizer::adam(cfg.lr);

        // The epoch loop works in mini-batches of `cfg.batch` samples:
        // per-sample gradients are computed (in parallel across the ambient
        // kernel thread budget when it is > 1), summed in submission order,
        // averaged, and applied as one optimizer step. Batch 1 degenerates
        // to the classic per-sample SGD loop bit-for-bit.
        let threads = hgnas_tensor::threads::kernel_threads();
        let batch = cfg.batch.max(1);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut train_mape = f64::NAN;
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for chunk in order.chunks(batch) {
                let results = batch_grads(
                    &model,
                    train,
                    chunk,
                    ctx.points,
                    cfg.global_node,
                    scale_ms,
                    threads,
                );
                // Reduce in submission order: worker count never reorders
                // the floating-point sums.
                for (l, _) in &results {
                    epoch_loss += l;
                }
                let scale = 1.0 / chunk.len() as f32;
                for (pi, p) in model.params_mut().into_iter().enumerate() {
                    let mut acc: Option<Tensor> = None;
                    for (_, grads) in &results {
                        if let Some(g) = &grads[pi] {
                            acc = Some(match acc {
                                Some(a) => a.zip_map(g, |x, y| x + y),
                                None => g.clone(),
                            });
                        }
                    }
                    if let Some(g) = acc {
                        let g = if chunk.len() > 1 { g.scale(scale) } else { g };
                        p.apply_grad(&g, &mut opt);
                    }
                }
            }
            train_mape = epoch_loss / train.len().max(1) as f64;
        }

        let predictor = LatencyPredictor {
            device,
            model,
            scale_ms,
            context: ctx.clone(),
            global_node: cfg.global_node,
            gcn_dims: cfg.gcn_dims.clone(),
            mlp_hidden: cfg.mlp_hidden.clone(),
        };
        let eval = predictor.evaluate(val);
        let stats = TrainStats {
            train_mape,
            val_mape: eval.mape,
            val_within_10pct: eval.within_10pct,
            train_size: train.len(),
        };
        (predictor, stats)
    }

    /// The device this predictor perceives.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// The context (points, k, …) predictions are made in.
    pub fn context(&self) -> &PredictorContext {
        &self.context
    }

    /// Predicts the latency of `arch` on the target device, in
    /// milliseconds. This is the paper's "perceive a candidate in
    /// milliseconds" path — no lowering, no simulation, one GCN forward.
    pub fn predict_ms(&self, arch: &Architecture) -> f64 {
        let graph = arch_to_graph_with(arch, self.context.points, self.global_node);
        let mut tape = Tape::new();
        let out = self.model.forward_frozen(&mut tape, &graph);
        (tape.value(out).item() as f64 * self.scale_ms).max(0.0)
    }

    /// Evaluates against labelled samples, producing Fig. 8 quantities.
    pub fn evaluate(&self, samples: &[LabelledArch]) -> PredictorEval {
        let pairs: Vec<(f64, f64)> = samples
            .iter()
            .map(|s| (self.predict_ms(&s.arch), s.latency_ms))
            .collect();
        let pred: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let truth: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        PredictorEval {
            mape: mape(&pred, &truth),
            within_10pct: error_bound_accuracy(&pred, &truth, 0.10),
            pairs,
        }
    }

    /// Ground-truth measurement helper (used by ablations comparing
    /// predictor-based and measurement-based search).
    pub fn profile(&self) -> DeviceProfile {
        self.device.profile()
    }

    /// Captures everything needed to rebuild this predictor bit-for-bit.
    /// `stats` are the training statistics to travel with the weights (the
    /// artifact store surfaces them on warm starts).
    pub fn snapshot(&self, stats: &TrainStats) -> PredictorSnapshot {
        PredictorSnapshot {
            device: self.device,
            context: self.context.clone(),
            global_node: self.global_node,
            gcn_dims: self.gcn_dims.clone(),
            mlp_hidden: self.mlp_hidden.clone(),
            scale_ms: self.scale_ms,
            stats: stats.clone(),
            weights: self
                .model
                .params()
                .iter()
                .map(|p| p.value().clone())
                .collect(),
        }
    }

    /// Rebuilds a predictor from a snapshot. Predictions are bit-identical
    /// to the snapshotted instance's.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's weight count or shapes do not match the
    /// model geometry its `gcn_dims`/`mlp_hidden` describe (a corrupt or
    /// hand-edited artifact; the artifact codec's checksum normally rejects
    /// these earlier).
    pub fn from_snapshot(snap: &PredictorSnapshot) -> (Self, TrainStats) {
        let mut init_rng = StdRng::seed_from_u64(0);
        let mut model = PredictorModel::new(&mut init_rng, &snap.gcn_dims, &snap.mlp_hidden);
        let params = model.params_mut();
        assert_eq!(
            params.len(),
            snap.weights.len(),
            "snapshot weight count does not match model geometry"
        );
        for (p, w) in params.into_iter().zip(&snap.weights) {
            p.set_value(w.clone());
        }
        let predictor = LatencyPredictor {
            device: snap.device,
            model,
            scale_ms: snap.scale_ms,
            context: snap.context.clone(),
            global_node: snap.global_node,
            gcn_dims: snap.gcn_dims.clone(),
            mlp_hidden: snap.mlp_hidden.clone(),
        };
        (predictor, snap.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PredictorConfig {
        PredictorConfig {
            train_samples: 120,
            val_samples: 60,
            epochs: 12,
            lr: 3e-3,
            gcn_dims: vec![24, 24],
            mlp_hidden: vec![16],
            seed: 1,
            global_node: true,
            batch: 1,
        }
    }

    fn tiny_ctx() -> PredictorContext {
        PredictorContext {
            positions: 6,
            points: 128,
            k: 10,
            classes: 4,
            head_hidden: vec![16],
        }
    }

    #[test]
    fn predictor_learns_better_than_mean_baseline() {
        let (p, stats) = LatencyPredictor::train(DeviceKind::Rtx3080, &tiny_ctx(), &tiny_cfg());
        // Baseline: always predicting the training mean. Its MAPE on the
        // validation set bounds what "learned nothing" looks like.
        let profile = DeviceKind::Rtx3080.profile();
        let val = generate_dataset(&profile, 6, 128, 10, 4, &[16], 60, 999);
        let mean_pred: Vec<f64> = vec![p.scale_ms; val.len()];
        let truth: Vec<f64> = val.iter().map(|s| s.latency_ms).collect();
        let baseline = mape(&mean_pred, &truth);
        let eval = p.evaluate(&val);
        assert!(
            eval.mape < baseline,
            "predictor {:.3} not better than mean baseline {:.3} (train stats {stats:?})",
            eval.mape,
            baseline
        );
    }

    #[test]
    fn predictions_positive_and_finite() {
        let (p, _) = LatencyPredictor::train(DeviceKind::JetsonTx2, &tiny_ctx(), &tiny_cfg());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a = Architecture::random(&mut rng, 6, 10, 4);
            let ms = p.predict_ms(&a);
            assert!(ms.is_finite() && ms >= 0.0, "prediction {ms}");
        }
    }

    #[test]
    fn batched_training_is_bit_identical_across_thread_budgets() {
        let mut cfg = tiny_cfg();
        cfg.batch = 4;
        cfg.epochs = 4;
        let probe_archs: Vec<Architecture> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..8)
                .map(|_| Architecture::random(&mut rng, 6, 10, 4))
                .collect()
        };
        let predict_all = |threads: usize| -> Vec<u64> {
            let (p, stats) = with_kernel_threads(threads, || {
                LatencyPredictor::train(DeviceKind::Rtx3080, &tiny_ctx(), &cfg)
            });
            let mut bits: Vec<u64> = probe_archs
                .iter()
                .map(|a| p.predict_ms(a).to_bits())
                .collect();
            bits.push(stats.train_mape.to_bits());
            bits.push(stats.val_mape.to_bits());
            bits
        };
        let t1 = predict_all(1);
        let t2 = predict_all(2);
        let t8 = predict_all(8);
        assert_eq!(t1, t2);
        assert_eq!(t1, t8);
    }

    #[test]
    fn batch_one_matches_per_sample_reference() {
        // The per-sample loop and the accumulation path at batch 1 must be
        // the same algorithm: same weights, same stats, bit-for-bit.
        let cfg = tiny_cfg();
        let (a, sa) = LatencyPredictor::train(DeviceKind::JetsonTx2, &tiny_ctx(), &cfg);
        let (b, sb) = LatencyPredictor::train(DeviceKind::JetsonTx2, &tiny_ctx(), &cfg);
        assert_eq!(sa, sb);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let arch = Architecture::random(&mut rng, 6, 10, 4);
            assert_eq!(a.predict_ms(&arch).to_bits(), b.predict_ms(&arch).to_bits());
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let (p, stats) =
            LatencyPredictor::train(DeviceKind::RaspberryPi3B, &tiny_ctx(), &tiny_cfg());
        let snap = p.snapshot(&stats);
        let (q, qstats) = LatencyPredictor::from_snapshot(&snap);
        assert_eq!(stats, qstats);
        assert_eq!(q.device(), p.device());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let arch = Architecture::random(&mut rng, 6, 10, 4);
            assert_eq!(
                p.predict_ms(&arch).to_bits(),
                q.predict_ms(&arch).to_bits(),
                "snapshot round-trip changed a prediction"
            );
        }
    }

    #[test]
    fn prediction_is_fast_single_forward() {
        let (p, _) = LatencyPredictor::train(DeviceKind::Rtx3080, &tiny_ctx(), &tiny_cfg());
        let mut rng = StdRng::seed_from_u64(6);
        let a = Architecture::random(&mut rng, 6, 10, 4);
        let t0 = std::time::Instant::now();
        for _ in 0..100 {
            p.predict_ms(&a);
        }
        let per_call = t0.elapsed().as_secs_f64() / 100.0;
        // Paper claim: "within milliseconds". Allow generous CI headroom.
        assert!(per_call < 0.05, "predict_ms took {per_call:.4}s");
    }
}
