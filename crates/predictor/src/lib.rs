//! The GNN-based hardware performance predictor ("use GNN to perceive
//! GNNs", paper Sec. III-D).
//!
//! Real-time measurement of every search candidate on an edge device is
//! unbearably slow; HGNAS instead *learns* the latency surface. A candidate
//! architecture is abstracted into a small directed graph (nodes = input /
//! output / operations, edges = dataflow, plus a **global node** connected
//! to everything that carries the input-data properties), node features
//! encode each operation's type and function, and a 3-layer GCN + MLP
//! regresses the latency on the target device. Training labels come from
//! the device simulator's noisy `measure` (substitution S4 in `DESIGN.md`).
//!
//! The paper reports (Fig. 8) ≈6 % MAPE on RTX3080 / i7 / TX2 and ≈19 % on
//! the Raspberry Pi (noisy measurements), with >80 % of predictions inside
//! a 10 % error bound; the `fig8` harness reproduces those quantities on
//! this implementation.
//!
//! # Example
//!
//! ```no_run
//! use hgnas_device::DeviceKind;
//! use hgnas_predictor::{LatencyPredictor, PredictorConfig, PredictorContext};
//!
//! let ctx = PredictorContext::small();
//! let cfg = PredictorConfig::small();
//! let (predictor, stats) =
//!     LatencyPredictor::train(DeviceKind::Rtx3080, &ctx, &cfg);
//! println!("val MAPE: {:.1}%", stats.val_mape * 100.0);
//! ```

mod dataset;
mod features;
mod model;
mod train;

pub use dataset::{generate_dataset, LabelledArch};
pub use features::{arch_to_graph, arch_to_graph_with, ArchGraph, FEATURE_WIDTH};
pub use model::PredictorModel;
pub use train::{
    LatencyPredictor, PredictorConfig, PredictorContext, PredictorEval, PredictorSnapshot,
    TrainStats,
};
