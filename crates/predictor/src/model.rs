//! The predictor network: 3 GCN layers + MLP head (paper Fig. 5).

use crate::features::{ArchGraph, FEATURE_WIDTH};
use hgnas_autograd::{Reduction, Tape, Var};
use hgnas_nn::{Activation, GcnLayer, Mlp, Module, Param};
use rand::Rng;

/// GCN + MLP latency regressor.
///
/// The paper's configuration is three GCN layers with hidden widths
/// 256·512·512 (sum aggregation over the architecture graph) followed by a
/// 256·128·1 MLP with LeakyReLU, reading out from mean-pooled node
/// embeddings. Widths are configurable so the reduced-scale harnesses can
/// train in seconds.
#[derive(Debug, Clone)]
pub struct PredictorModel {
    gcn: Vec<GcnLayer>,
    mlp: Mlp,
}

impl PredictorModel {
    /// Builds a predictor with the given GCN widths and MLP hidden widths.
    ///
    /// # Panics
    ///
    /// Panics if `gcn_dims` is empty.
    pub fn new<R: Rng>(rng: &mut R, gcn_dims: &[usize], mlp_hidden: &[usize]) -> Self {
        assert!(!gcn_dims.is_empty(), "need at least one GCN layer");
        let mut gcn = Vec::with_capacity(gcn_dims.len());
        let mut cur = FEATURE_WIDTH;
        for &d in gcn_dims {
            gcn.push(GcnLayer::new(rng, cur, d, Activation::Relu));
            cur = d;
        }
        let mut dims = vec![cur];
        dims.extend_from_slice(mlp_hidden);
        dims.push(1);
        let mlp = Mlp::new(rng, &dims, Activation::LeakyRelu(0.01));
        PredictorModel { gcn, mlp }
    }

    /// Forward pass over one architecture graph, returning the scalar
    /// (normalised) latency prediction as a `[1,1]` var.
    pub fn forward(&self, tape: &mut Tape, graph: &ArchGraph) -> Var {
        let adj = tape.input(graph.adjacency());
        let mut h = tape.input(graph.features.clone());
        for layer in &self.gcn {
            h = layer.forward(tape, adj, h);
        }
        // Mean readout over all nodes (global node included).
        let n = graph.graph.len();
        let pooled = tape.segment_pool(h, &[n], Reduction::Mean);
        let out = self.mlp.forward(tape, pooled);
        // Latencies are positive; LeakyReLU keeps gradients alive when the
        // estimate dips negative early in training.
        tape.leaky_relu(out, 0.01)
    }

    /// Inference-only forward pass: weights enter the tape as plain inputs
    /// (no gradient tracking, no bindings mutated), so prediction is safe
    /// and cheap from many threads sharing `&self`. Numerically identical
    /// to [`PredictorModel::forward`].
    pub fn forward_frozen(&self, tape: &mut Tape, graph: &ArchGraph) -> Var {
        let adj = tape.input(graph.adjacency());
        let mut h = tape.input(graph.features.clone());
        for layer in &self.gcn {
            h = layer.forward_frozen(tape, adj, h);
        }
        let n = graph.graph.len();
        let pooled = tape.segment_pool(h, &[n], Reduction::Mean);
        let out = self.mlp.forward_frozen(tape, pooled);
        tape.leaky_relu(out, 0.01)
    }
}

impl Module for PredictorModel {
    fn params(&self) -> Vec<&Param> {
        let mut p: Vec<&Param> = self.gcn.iter().flat_map(Module::params).collect();
        p.extend(self.mlp.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self.gcn.iter_mut().flat_map(Module::params_mut).collect();
        p.extend(self.mlp.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::arch_to_graph;
    use hgnas_ops::Architecture;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_is_scalar_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PredictorModel::new(&mut rng, &[32, 32], &[16]);
        let arch = Architecture::random(&mut rng, 8, 10, 4);
        let g = arch_to_graph(&arch, 128);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &g);
        let v = tape.value(out);
        assert_eq!(v.numel(), 1);
        assert!(v.item().is_finite());
    }

    #[test]
    fn paper_dims_construct() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = PredictorModel::new(&mut rng, &[256, 512, 512], &[256, 128]);
        // 3 GCN layers + 3 MLP layers = 12 params (w+b each).
        assert_eq!(model.params().len(), 12);
    }

    #[test]
    fn different_archs_get_different_predictions() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = PredictorModel::new(&mut rng, &[32], &[16]);
        let a1 = Architecture::random(&mut rng, 6, 10, 4);
        let a2 = Architecture::random(&mut rng, 12, 20, 4);
        let mut t1 = Tape::new();
        let o1 = model.forward(&mut t1, &arch_to_graph(&a1, 128));
        let mut t2 = Tape::new();
        let o2 = model.forward(&mut t2, &arch_to_graph(&a2, 1024));
        assert_ne!(t1.value(o1).item(), t2.value(o2).item());
    }
}
