//! Predictor training-set generation: random architectures labelled by
//! (noisy) simulated on-device measurement.

use hgnas_device::DeviceProfile;
use hgnas_ops::Architecture;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One labelled sample: an architecture and its measured latency.
#[derive(Debug, Clone)]
pub struct LabelledArch {
    /// The sampled architecture.
    pub arch: Architecture,
    /// Measured latency on the target device, milliseconds.
    pub latency_ms: f64,
}

/// Samples `count` random architectures from the fine-grained space and
/// labels each with a noisy measurement on `device` (paper Sec. IV-A:
/// *"labels obtained from measurement results on various edge devices"*).
/// Architectures that do not fit in device memory are skipped, exactly as a
/// real measurement campaign would drop OOM runs.
// One over clippy's argument budget; the args mirror the measurement
// campaign's free variables and collapsing them into a struct would just
// move the noise to every call site.
#[allow(clippy::too_many_arguments)]
pub fn generate_dataset(
    device: &DeviceProfile,
    positions: usize,
    points: usize,
    k: usize,
    classes: usize,
    head_hidden: &[usize],
    count: usize,
    seed: u64,
) -> Vec<LabelledArch> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let arch = Architecture::random(&mut rng, positions, k, classes);
        let workload = arch.lower(points, head_hidden);
        match device.measure(&workload, &mut rng) {
            Ok(report) => out.push(LabelledArch {
                arch,
                latency_ms: report.latency_ms,
            }),
            Err(_) => continue, // OOM candidates yield no measurement.
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_device::DeviceKind;

    #[test]
    fn dataset_has_requested_size_and_positive_labels() {
        let d = DeviceKind::Rtx3080.profile();
        let ds = generate_dataset(&d, 8, 128, 10, 4, &[16], 40, 7);
        assert_eq!(ds.len(), 40);
        assert!(ds.iter().all(|s| s.latency_ms > 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let d = DeviceKind::JetsonTx2.profile();
        let a = generate_dataset(&d, 6, 128, 10, 4, &[16], 10, 3);
        let b = generate_dataset(&d, 6, 128, 10, 4, &[16], 10, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.latency_ms, y.latency_ms);
        }
    }

    #[test]
    fn labels_span_a_real_range() {
        let d = DeviceKind::RaspberryPi3B.profile();
        let ds = generate_dataset(&d, 12, 256, 10, 4, &[16], 60, 11);
        let min = ds.iter().map(|s| s.latency_ms).fold(f64::MAX, f64::min);
        let max = ds.iter().map(|s| s.latency_ms).fold(0.0, f64::max);
        assert!(max > 2.0 * min, "degenerate label range {min}..{max}");
    }
}
