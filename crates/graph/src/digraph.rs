//! Small dense directed graphs — the representation the latency predictor
//! uses for abstracted GNN architectures (a few dozen nodes).

/// Normalisation applied when materialising a dense adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjNorm {
    /// Raw 0/1 adjacency (the paper's GCN layers use a *sum* aggregator).
    None,
    /// Row-stochastic: each row divided by its out-degree.
    Row,
    /// Symmetric `D^-1/2 (A) D^-1/2` over the symmetrised edge set.
    Symmetric,
}

/// A directed graph with a fixed node count and an edge list.
///
/// # Example
///
/// ```
/// use hgnas_graph::{AdjNorm, DiGraph};
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// let a = g.adjacency(AdjNorm::None, true);
/// assert_eq!(a[1 * 3 + 0], 1.0); // edge 0->1 lands in receiver row 1
/// assert_eq!(a[2 * 3 + 2], 1.0); // self loop
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n, "edge endpoint out of range");
        self.edges.push((src, dst));
    }

    /// The edge list in insertion order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Materialises the dense adjacency (row-major `n*n`), optionally with
    /// self loops, under the requested normalisation. Message direction:
    /// `adj[dst][src] = 1` so that `A · X` aggregates *incoming* features.
    pub fn adjacency(&self, norm: AdjNorm, self_loops: bool) -> Vec<f32> {
        let n = self.n;
        let mut a = vec![0.0f32; n * n];
        for &(s, d) in &self.edges {
            a[d * n + s] = 1.0;
        }
        if self_loops {
            for i in 0..n {
                a[i * n + i] = 1.0;
            }
        }
        match norm {
            AdjNorm::None => {}
            AdjNorm::Row => {
                for i in 0..n {
                    let row = &mut a[i * n..(i + 1) * n];
                    let deg: f32 = row.iter().sum();
                    if deg > 0.0 {
                        for v in row.iter_mut() {
                            *v /= deg;
                        }
                    }
                }
            }
            AdjNorm::Symmetric => {
                // Symmetrise, then D^-1/2 A D^-1/2.
                for i in 0..n {
                    for j in (i + 1)..n {
                        let m = a[i * n + j].max(a[j * n + i]);
                        a[i * n + j] = m;
                        a[j * n + i] = m;
                    }
                }
                let deg: Vec<f32> = (0..n)
                    .map(|i| a[i * n..(i + 1) * n].iter().sum::<f32>().max(1e-12))
                    .collect();
                for i in 0..n {
                    for j in 0..n {
                        a[i * n + j] /= (deg[i] * deg[j]).sqrt();
                    }
                }
            }
        }
        a
    }

    /// In-degree of node `i` (not counting self loops).
    pub fn in_degree(&self, i: usize) -> usize {
        self.edges.iter().filter(|&&(_, d)| d == i).count()
    }

    /// Out-degree of node `i` (not counting self loops).
    pub fn out_degree(&self, i: usize) -> usize {
        self.edges.iter().filter(|&&(s, _)| s == i).count()
    }

    /// Edge density over possible ordered pairs (excluding self pairs).
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.edges.len() as f64 / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_direction_is_dst_row() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        let a = g.adjacency(AdjNorm::None, false);
        assert_eq!(a, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        let a = g.adjacency(AdjNorm::Row, true);
        for i in 0..3 {
            let s: f32 = a[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn symmetric_norm_is_symmetric() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(1, 3);
        let a = g.adjacency(AdjNorm::Symmetric, true);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[i * 4 + j] - a[j * 4 + i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn degrees_and_density() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 1);
        assert!((g.density() - 2.0 / 6.0).abs() < 1e-12);
    }
}
