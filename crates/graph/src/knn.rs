//! K-nearest-neighbour graph construction.
//!
//! `knn_brute` is the O(n²) reference; `knn_grid` buckets points into a
//! uniform grid and searches expanding shells, which is markedly faster for
//! the point counts the paper sweeps (128–2048, Fig. 1). Both return
//! identical neighbour sets (modulo exact-tie ordering); the property test
//! below and the `knn` criterion bench compare them.
//!
//! The distance loop is split from the selection loop: distances for a
//! whole candidate batch are computed first through the lane kernels in
//! [`hgnas_tensor::simd`] (`squared_distances_3d` for the brute-force
//! 0..n sweep, the gathered `_indexed` variant for grid-shell candidate
//! lists), then the bounded insertion-select consumes the scored batch in
//! the original candidate order. The lane kernels compute each distance
//! with the exact association the old scalar fold used
//! (`(dx²+dy²)+dz²`), so neighbour sets — ties included — are
//! bit-identical to both the scalar fallback and the pre-lane code.

use crate::neighbors::NeighborList;
use hgnas_tensor::simd;
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide count of [`knn_brute`] invocations. Purely observational —
/// the ops layer's graph-reuse tests pin "the static KNN graph is built once
/// per batch, not once per epoch" against this counter.
static KNN_BRUTE_CALLS: AtomicUsize = AtomicUsize::new(0);

/// Number of times [`knn_brute`] has run in this process. Purely
/// observational; tests sampling it must own their process (a dedicated
/// integration-test binary), since parallel tests all bump the same counter.
pub fn knn_brute_calls() -> usize {
    KNN_BRUTE_CALLS.load(Ordering::Relaxed)
}

#[inline]
fn dist2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn validate(points: &[f32], dim: usize, k: usize) -> usize {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(points.len() % dim, 0, "point buffer not a multiple of dim");
    let n = points.len() / dim;
    assert!(k > 0, "k must be positive");
    assert!(n > k, "need more than k={k} points, got {n}");
    n
}

/// Selects the `k` smallest-distance candidates (excluding `i` itself) from
/// pre-scored `(index, distance)` pairs via a bounded insertion sort — fast
/// for the small `k` (≈20) GNNs use. Consuming candidates in their batch
/// order keeps exact-tie resolution identical to the fused scalar loop this
/// replaced.
fn select_k_scored(
    i: usize,
    scored: impl Iterator<Item = (usize, f32)>,
    k: usize,
) -> Vec<(f32, usize)> {
    let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
    for (j, d) in scored {
        if j == i {
            continue;
        }
        if best.len() == k && d >= best[k - 1].0 {
            continue;
        }
        let pos = best.partition_point(|&(bd, _)| bd <= d);
        best.insert(pos, (d, j));
        if best.len() > k {
            best.pop();
        }
    }
    best
}

/// Fills `dists[j] = |points[i] - points[j]|²` for every point, through the
/// lane kernel when the cloud is 3-D, the scalar [`dist2`] otherwise (both
/// produce the same bits for 3-D inputs).
fn fill_dists(i: usize, points: &[f32], dim: usize, dists: &mut [f32]) {
    let pi = &points[i * dim..(i + 1) * dim];
    if dim == 3 {
        simd::squared_distances_3d(pi, points, dists);
    } else {
        for (j, d) in dists.iter_mut().enumerate() {
            *d = dist2(pi, &points[j * dim..(j + 1) * dim]);
        }
    }
}

/// Brute-force exact KNN over `n` points of dimension `dim`.
///
/// Each point's `k` nearest *other* points, nearest first.
///
/// # Panics
///
/// Panics if the buffer is ragged, `k == 0`, or `n <= k`.
pub fn knn_brute(points: &[f32], dim: usize, k: usize) -> NeighborList {
    KNN_BRUTE_CALLS.fetch_add(1, Ordering::Relaxed);
    let n = validate(points, dim, k);
    let mut idx = vec![0usize; n * k];
    let mut dists = vec![0.0f32; n];
    for i in 0..n {
        fill_dists(i, points, dim, &mut dists);
        let best = select_k_scored(i, dists.iter().copied().enumerate(), k);
        for (slot, &(_, j)) in best.iter().enumerate() {
            idx[i * k + slot] = j;
        }
    }
    NeighborList::new(n, k, idx)
}

/// Grid-accelerated exact KNN for 3-D points.
///
/// Buckets points into a uniform grid sized so the expected occupancy is a
/// few points per cell, then for each query expands cell shells until the
/// current k-th distance is provably correct (shell lower bound exceeds it).
///
/// # Panics
///
/// Panics if `dim != 3`, the buffer is ragged, `k == 0`, or `n <= k`.
pub fn knn_grid(points: &[f32], dim: usize, k: usize) -> NeighborList {
    assert_eq!(dim, 3, "knn_grid is specialised for 3-D point clouds");
    let n = validate(points, dim, k);

    // Bounding box.
    let mut lo = [f32::INFINITY; 3];
    let mut hi = [f32::NEG_INFINITY; 3];
    for p in points.chunks(3) {
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let extent: f32 = (0..3).map(|d| hi[d] - lo[d]).fold(0.0, f32::max).max(1e-6);
    // Aim for ~4 points per occupied cell on average.
    let cells_per_axis = ((n as f32 / 4.0).cbrt().ceil() as usize).clamp(1, 64);
    let cell = extent / cells_per_axis as f32;

    let cell_of = |p: &[f32]| -> [usize; 3] {
        let mut c = [0usize; 3];
        for d in 0..3 {
            c[d] = (((p[d] - lo[d]) / cell) as usize).min(cells_per_axis - 1);
        }
        c
    };

    let ncells = cells_per_axis * cells_per_axis * cells_per_axis;
    let flat = |c: [usize; 3]| (c[0] * cells_per_axis + c[1]) * cells_per_axis + c[2];
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); ncells];
    for i in 0..n {
        buckets[flat(cell_of(&points[i * 3..i * 3 + 3]))].push(i);
    }

    let mut idx = vec![0usize; n * k];
    let mut candidates: Vec<usize> = Vec::new();
    let mut cand_dists: Vec<f32> = Vec::new();
    for i in 0..n {
        let pi = &points[i * 3..i * 3 + 3];
        let ci = cell_of(pi);
        let mut best: Vec<(f32, usize)> = Vec::new();
        for ring in 0..=cells_per_axis {
            // Lower bound on distance to any point in a cell at Chebyshev
            // ring distance `ring` from the query's cell.
            if best.len() >= k {
                let bound = (ring.saturating_sub(1)) as f32 * cell;
                if bound * bound > best[k - 1].0 {
                    break;
                }
            }
            candidates.clear();
            let r = ring as isize;
            let range = |c: usize| -> (isize, isize) {
                (
                    (c as isize - r).max(0),
                    (c as isize + r).min(cells_per_axis as isize - 1),
                )
            };
            let (x0, x1) = range(ci[0]);
            let (y0, y1) = range(ci[1]);
            let (z0, z1) = range(ci[2]);
            for x in x0..=x1 {
                for y in y0..=y1 {
                    for z in z0..=z1 {
                        // Only the shell surface — interior rings were done.
                        let cheb = (x - ci[0] as isize)
                            .abs()
                            .max((y - ci[1] as isize).abs())
                            .max((z - ci[2] as isize).abs());
                        if cheb != r {
                            continue;
                        }
                        candidates.extend(&buckets[flat([x as usize, y as usize, z as usize])]);
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            cand_dists.resize(candidates.len(), 0.0);
            simd::squared_distances_3d_indexed(pi, points, &candidates, &mut cand_dists);
            let merged = select_k_scored(
                i,
                candidates.iter().copied().zip(cand_dists.iter().copied()),
                k,
            );
            for (d, j) in merged {
                if best.len() == k && d >= best[k - 1].0 {
                    continue;
                }
                let pos = best.partition_point(|&(bd, _)| bd <= d);
                best.insert(pos, (d, j));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        debug_assert_eq!(best.len(), k);
        for (slot, &(_, j)) in best.iter().enumerate() {
            idx[i * k + slot] = j;
        }
    }
    NeighborList::new(n, k, idx)
}

/// The *Random* sampling function from the design space (Tab. I): `k`
/// uniformly chosen neighbours per node, distinct from the node itself
/// (duplicates among the k are allowed, as in sampled GNN training).
///
/// # Panics
///
/// Panics if `k == 0` or `n < 2`.
pub fn random_neighbors<R: Rng>(rng: &mut R, n: usize, k: usize) -> NeighborList {
    assert!(k > 0, "k must be positive");
    assert!(n >= 2, "need at least two nodes");
    let mut idx = vec![0usize; n * k];
    for i in 0..n {
        for slot in 0..k {
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            idx[i * k + slot] = j;
        }
    }
    NeighborList::new(n, k, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_cloud(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn line_cloud_nearest_first() {
        let pts = [0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 10.0, 0.0, 0.0];
        let nl = knn_brute(&pts, 3, 2);
        assert_eq!(nl.neighbors(0), &[1, 2]);
        assert_eq!(nl.neighbors(3), &[2, 1]);
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = random_cloud(&mut rng, 50);
        for (builder, name) in [
            (
                knn_brute as fn(&[f32], usize, usize) -> NeighborList,
                "brute",
            ),
            (knn_grid, "grid"),
        ] {
            let nl = builder(&pts, 3, 5);
            for i in 0..50 {
                assert!(
                    !nl.neighbors(i).contains(&i),
                    "{name} produced self loop at {i}"
                );
            }
        }
    }

    #[test]
    fn grid_matches_brute_distances() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [30usize, 100, 257] {
            let pts = random_cloud(&mut rng, n);
            let a = knn_brute(&pts, 3, 8);
            let b = knn_grid(&pts, 3, 8);
            for i in 0..n {
                // Compare distances, not indices, to be robust to exact ties.
                let da: Vec<f32> = a
                    .neighbors(i)
                    .iter()
                    .map(|&j| {
                        let (p, q) = (&pts[i * 3..i * 3 + 3], &pts[j * 3..j * 3 + 3]);
                        dist2(p, q)
                    })
                    .collect();
                let db: Vec<f32> = b
                    .neighbors(i)
                    .iter()
                    .map(|&j| {
                        let (p, q) = (&pts[i * 3..i * 3 + 3], &pts[j * 3..j * 3 + 3]);
                        dist2(p, q)
                    })
                    .collect();
                for (x, y) in da.iter().zip(&db) {
                    assert!((x - y).abs() < 1e-9, "n={n} node {i}: {da:?} vs {db:?}");
                }
            }
        }
    }

    #[test]
    fn random_neighbors_excludes_self() {
        let mut rng = StdRng::seed_from_u64(3);
        let nl = random_neighbors(&mut rng, 10, 4);
        for i in 0..10 {
            assert!(!nl.neighbors(i).contains(&i));
        }
    }

    #[test]
    #[should_panic(expected = "more than k")]
    fn too_few_points_panics() {
        knn_brute(&[0.0; 9], 3, 4);
    }

    #[test]
    fn lane_and_scalar_paths_build_identical_graphs() {
        // The KNN distance loop runs through the lane kernels; neighbour
        // sets (exact indices, ties included) must not depend on the path.
        use hgnas_tensor::simd::{with_path, LanePath};
        let mut rng = StdRng::seed_from_u64(9);
        for n in [30usize, 97, 300] {
            let pts = random_cloud(&mut rng, n);
            for (builder, name) in [
                (
                    knn_brute as fn(&[f32], usize, usize) -> NeighborList,
                    "brute",
                ),
                (knn_grid, "grid"),
            ] {
                let scalar = with_path(LanePath::Scalar, || builder(&pts, 3, 7));
                let lane = with_path(LanePath::Avx2, || builder(&pts, 3, 7));
                assert_eq!(scalar, lane, "{name} n={n} diverged across lane paths");
            }
        }
    }
}
