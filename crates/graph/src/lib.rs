//! Graph substrate for HGNAS: KNN construction, neighbour lists, CSR
//! adjacency and small directed graphs.
//!
//! Point-cloud GNNs such as DGCNN rebuild a K-nearest-neighbour graph inside
//! every layer — the very operation the paper identifies as the dominant cost
//! on GPUs (Fig. 3). This crate provides both the reference brute-force
//! construction and a uniform-grid accelerated variant (compared in the
//! `knn` criterion bench), plus the random-sampling alternative from the
//! design space (Tab. I) and the graph containers the rest of the stack
//! shares.
//!
//! # Example
//!
//! ```
//! use hgnas_graph::knn_brute;
//!
//! // Four points on a line; each point's nearest 2 neighbours.
//! let pts = [0.0, 0.0, 0.0,  1.0, 0.0, 0.0,  2.0, 0.0, 0.0,  10.0, 0.0, 0.0];
//! let nl = knn_brute(&pts, 3, 2);
//! assert_eq!(nl.neighbors(0), &[1, 2]);
//! ```

mod digraph;
mod kdtree;
mod knn;
mod neighbors;

pub use digraph::{AdjNorm, DiGraph};
pub use kdtree::knn_kdtree;
pub use knn::{knn_brute, knn_brute_calls, knn_grid, random_neighbors};
pub use neighbors::{Csr, NeighborList};
