//! kd-tree accelerated exact KNN — the third construction strategy next to
//! brute force and the uniform grid (compared in the `knn` bench).
//!
//! Median-split kd-tree over 3-D points with branch-and-bound search: a
//! subtree is pruned when the splitting plane is farther than the current
//! k-th best distance. Best suited to non-uniform clouds where the grid's
//! occupancy assumption breaks down.

use crate::neighbors::NeighborList;

struct Node {
    /// Splitting axis (0..3).
    axis: usize,
    /// Index of the point stored at this node.
    point: usize,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

fn build(indices: &mut [usize], points: &[f32], depth: usize) -> Option<Box<Node>> {
    if indices.is_empty() {
        return None;
    }
    let axis = depth % 3;
    indices.sort_unstable_by(|&a, &b| {
        points[a * 3 + axis]
            .partial_cmp(&points[b * 3 + axis])
            .expect("point coordinates must not be NaN")
    });
    let mid = indices.len() / 2;
    let point = indices[mid];
    let (left_idx, rest) = indices.split_at_mut(mid);
    let right_idx = &mut rest[1..];
    Some(Box::new(Node {
        axis,
        point,
        left: build(left_idx, points, depth + 1),
        right: build(right_idx, points, depth + 1),
    }))
}

fn dist2(points: &[f32], a: usize, b: usize) -> f32 {
    (0..3)
        .map(|d| (points[a * 3 + d] - points[b * 3 + d]).powi(2))
        .sum()
}

/// Bounded best-list insertion, mirroring the brute-force selection.
fn consider(best: &mut Vec<(f32, usize)>, k: usize, d: f32, j: usize) {
    if best.len() == k && d >= best[k - 1].0 {
        return;
    }
    let pos = best.partition_point(|&(bd, _)| bd <= d);
    best.insert(pos, (d, j));
    if best.len() > k {
        best.pop();
    }
}

fn search(node: &Node, points: &[f32], query: usize, k: usize, best: &mut Vec<(f32, usize)>) {
    if node.point != query {
        let d = dist2(points, query, node.point);
        consider(best, k, d, node.point);
    }
    let delta = points[query * 3 + node.axis] - points[node.point * 3 + node.axis];
    let (near, far) = if delta < 0.0 {
        (&node.left, &node.right)
    } else {
        (&node.right, &node.left)
    };
    if let Some(n) = near {
        search(n, points, query, k, best);
    }
    // Visit the far side only if the splitting plane is closer than the
    // current k-th best (or we have fewer than k yet).
    let plane_d2 = delta * delta;
    if best.len() < k || plane_d2 < best[best.len() - 1].0 {
        if let Some(f) = far {
            search(f, points, query, k, best);
        }
    }
}

/// Exact KNN over 3-D points using a kd-tree.
///
/// Same contract as [`crate::knn_brute`]: each point's `k` nearest *other*
/// points, nearest first.
///
/// # Panics
///
/// Panics if `dim != 3`, the buffer is ragged, `k == 0`, or `n <= k`.
pub fn knn_kdtree(points: &[f32], dim: usize, k: usize) -> NeighborList {
    assert_eq!(dim, 3, "knn_kdtree is specialised for 3-D point clouds");
    assert_eq!(points.len() % 3, 0, "point buffer not a multiple of dim");
    let n = points.len() / 3;
    assert!(k > 0, "k must be positive");
    assert!(n > k, "need more than k={k} points, got {n}");

    let mut indices: Vec<usize> = (0..n).collect();
    let root = build(&mut indices, points, 0).expect("non-empty tree");

    let mut idx = vec![0usize; n * k];
    for i in 0..n {
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        search(&root, points, i, k, &mut best);
        debug_assert_eq!(best.len(), k);
        for (slot, &(_, j)) in best.iter().enumerate() {
            idx[i * k + slot] = j;
        }
    }
    NeighborList::new(n, k, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn_brute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn matches_brute_force_distances() {
        for seed in 0..5u64 {
            let pts = cloud(seed, 120);
            let a = knn_brute(&pts, 3, 7);
            let b = knn_kdtree(&pts, 3, 7);
            for i in 0..120 {
                for slot in 0..7 {
                    let da = dist2(&pts, i, a.neighbors(i)[slot]);
                    let db = dist2(&pts, i, b.neighbors(i)[slot]);
                    assert!((da - db).abs() < 1e-6, "seed {seed} node {i} slot {slot}");
                }
            }
        }
    }

    #[test]
    fn no_self_loops_and_sorted() {
        let pts = cloud(9, 64);
        let nl = knn_kdtree(&pts, 3, 5);
        for i in 0..64 {
            assert!(!nl.neighbors(i).contains(&i));
            let ds: Vec<f32> = nl.neighbors(i).iter().map(|&j| dist2(&pts, i, j)).collect();
            for w in ds.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
        }
    }

    #[test]
    fn handles_clustered_clouds() {
        // Two tight clusters far apart — the case uniform grids handle
        // poorly.
        let mut rng = StdRng::seed_from_u64(10);
        let mut pts = Vec::new();
        for c in 0..2 {
            let base = c as f32 * 100.0;
            for _ in 0..40 {
                pts.push(base + rng.gen_range(-0.1f32..0.1));
                pts.push(rng.gen_range(-0.1f32..0.1));
                pts.push(rng.gen_range(-0.1f32..0.1));
            }
        }
        let a = knn_brute(&pts, 3, 6);
        let b = knn_kdtree(&pts, 3, 6);
        for i in 0..80 {
            for slot in 0..6 {
                let da = dist2(&pts, i, a.neighbors(i)[slot]);
                let db = dist2(&pts, i, b.neighbors(i)[slot]);
                assert!((da - db).abs() < 1e-6);
            }
        }
    }
}
