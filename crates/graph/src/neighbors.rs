//! Neighbour-list and CSR adjacency containers.

/// A fixed-fanout neighbour list: every node has exactly `k` neighbours.
///
/// Stored row-major (`idx[i*k..(i+1)*k]` are node `i`'s neighbours, nearest
/// first for KNN-built lists). This layout is what the GNN executor consumes
/// directly for edge-feature expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborList {
    n: usize,
    k: usize,
    idx: Vec<usize>,
}

impl NeighborList {
    /// Builds from a flat index vector.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != n*k`, `k == 0`, or any index is `>= n`.
    pub fn new(n: usize, k: usize, idx: Vec<usize>) -> Self {
        assert!(k > 0, "fanout k must be positive");
        assert_eq!(idx.len(), n * k, "index vector must have n*k entries");
        assert!(idx.iter().all(|&j| j < n), "neighbour index out of range");
        NeighborList { n, k, idx }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Fanout per node.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Neighbours of node `i`, nearest first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.idx[i * self.k..(i + 1) * self.k]
    }

    /// The flat `n*k` index array (row-major), e.g. for
    /// `Tape::gather_rows`.
    pub fn flat(&self) -> &[usize] {
        &self.idx
    }

    /// Total directed edge count (`n*k`).
    pub fn edge_count(&self) -> usize {
        self.idx.len()
    }
}

/// Compressed sparse row adjacency for variable-degree graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl Csr {
    /// Builds from an edge list `(src, dst)` over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(s, d) in edges {
            assert!(s < n && d < n, "edge endpoint out of range");
            degree[s] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0usize; edges.len()];
        for &(s, d) in edges {
            targets[cursor[s]] = d;
            cursor[s] += 1;
        }
        Csr { offsets, targets }
    }

    /// Converts a fixed-fanout list into CSR form.
    pub fn from_neighbor_list(nl: &NeighborList) -> Self {
        let n = nl.len();
        let k = nl.k();
        let offsets = (0..=n).map(|i| i * k).collect();
        Csr {
            offsets,
            targets: nl.flat().to_vec(),
        }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Out-neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_list_layout() {
        let nl = NeighborList::new(2, 2, vec![1, 0, 0, 1]);
        assert_eq!(nl.neighbors(0), &[1, 0]);
        assert_eq!(nl.neighbors(1), &[0, 1]);
        assert_eq!(nl.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbor_oob_rejected() {
        NeighborList::new(2, 1, vec![0, 5]);
    }

    #[test]
    fn csr_from_edges_groups_by_source() {
        let csr = Csr::from_edges(3, &[(0, 1), (2, 0), (0, 2)]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.neighbors(2), &[0]);
        let mut n0 = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn csr_round_trip_from_neighbor_list() {
        let nl = NeighborList::new(3, 2, vec![1, 2, 0, 2, 0, 1]);
        let csr = Csr::from_neighbor_list(&nl);
        assert_eq!(csr.len(), 3);
        for i in 0..3 {
            assert_eq!(csr.neighbors(i), nl.neighbors(i));
        }
    }
}
