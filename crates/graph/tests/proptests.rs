//! Property-based tests for graph construction.

use hgnas_graph::{knn_brute, knn_grid, random_neighbors, AdjNorm, Csr, DiGraph, NeighborList};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cloud(seed: u64, n: usize) -> Vec<f32> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn d2(pts: &[f32], i: usize, j: usize) -> f32 {
    (0..3)
        .map(|d| (pts[i * 3 + d] - pts[j * 3 + d]).powi(2))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn knn_is_truly_nearest(seed in 0u64..500, n in 12usize..60, k in 1usize..8) {
        prop_assume!(n > k);
        let pts = cloud(seed, n);
        let nl = knn_brute(&pts, 3, k);
        for i in 0..n {
            let worst_selected = nl
                .neighbors(i)
                .iter()
                .map(|&j| d2(&pts, i, j))
                .fold(0.0f32, f32::max);
            // No unselected point may be strictly closer than the worst
            // selected neighbour.
            for j in 0..n {
                if j != i && !nl.neighbors(i).contains(&j) {
                    prop_assert!(d2(&pts, i, j) >= worst_selected - 1e-6);
                }
            }
        }
    }

    #[test]
    fn grid_and_brute_distances_match(seed in 0u64..200, n in 12usize..80) {
        let k = 5;
        prop_assume!(n > k);
        let pts = cloud(seed, n);
        let a = knn_brute(&pts, 3, k);
        let b = knn_grid(&pts, 3, k);
        for i in 0..n {
            for slot in 0..k {
                let da = d2(&pts, i, a.neighbors(i)[slot]);
                let db = d2(&pts, i, b.neighbors(i)[slot]);
                prop_assert!((da - db).abs() < 1e-6, "node {i} slot {slot}");
            }
        }
    }

    #[test]
    fn knn_sorted_ascending(seed in 0u64..200, n in 10usize..40) {
        let k = 4;
        prop_assume!(n > k);
        let pts = cloud(seed, n);
        let nl = knn_brute(&pts, 3, k);
        for i in 0..n {
            let ds: Vec<f32> = nl.neighbors(i).iter().map(|&j| d2(&pts, i, j)).collect();
            for w in ds.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
        }
    }

    #[test]
    fn random_neighbors_valid(seed in 0u64..500, n in 2usize..50, k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_neighbors(&mut rng, n, k);
        prop_assert_eq!(nl.len(), n);
        for i in 0..n {
            prop_assert!(!nl.neighbors(i).contains(&i));
            prop_assert!(nl.neighbors(i).iter().all(|&j| j < n));
        }
    }

    #[test]
    fn csr_round_trip(n in 1usize..20, edges in prop::collection::vec((0usize..20, 0usize..20), 0..60)) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(s, d)| s < n && d < n)
            .collect();
        let csr = Csr::from_edges(n, &edges);
        prop_assert_eq!(csr.edge_count(), edges.len());
        let total: usize = (0..n).map(|i| csr.degree(i)).sum();
        prop_assert_eq!(total, edges.len());
    }

    #[test]
    fn neighbor_list_to_csr_preserves_order(
        n in 2usize..15, seed in 0u64..100
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_neighbors(&mut rng, n, 3);
        let csr = Csr::from_neighbor_list(&nl);
        for i in 0..n {
            prop_assert_eq!(csr.neighbors(i), nl.neighbors(i));
        }
    }

    #[test]
    fn row_norm_adjacency_is_stochastic(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..40)
    ) {
        let mut g = DiGraph::new(n);
        for (s, d) in edges.into_iter().filter(|&(s, d)| s < n && d < n) {
            g.add_edge(s, d);
        }
        let a = g.adjacency(AdjNorm::Row, true);
        for i in 0..n {
            let s: f32 = a[i * n..(i + 1) * n].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn neighbor_list_flat_layout(n in 2usize..10, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_neighbors(&mut rng, n, 2);
        let rebuilt = NeighborList::new(n, 2, nl.flat().to_vec());
        prop_assert_eq!(rebuilt, nl);
    }
}
