//! # HGNAS-rs
//!
//! A from-scratch Rust reproduction of **"Hardware-Aware Graph Neural Network
//! Automated Design for Edge Computing Platforms"** (HGNAS, DAC 2023).
//!
//! This facade crate re-exports the full stack:
//!
//! - [`tensor`] / [`autograd`] / [`nn`] — the numerical substrate (dense f32
//!   tensors, tape-based reverse-mode AD, layers/optimizers/metrics).
//! - [`graph`] — KNN construction, CSR adjacency, neighbour lists.
//! - [`pointcloud`] — SynthNet40, a synthetic 40-class point-cloud
//!   classification dataset standing in for ModelNet40.
//! - [`device`] — the analytical edge-device simulator (RTX3080, i7-8700K,
//!   Jetson TX2, Raspberry Pi 3B+ profiles) providing latency, peak memory
//!   and execution breakdowns.
//! - [`ops`] — the fine-grained GNN operation IR (Sample / Aggregate /
//!   Combine / Connect), executor, device lowering and the DGCNN-family
//!   baselines.
//! - [`predictor`] — the GCN-based hardware performance predictor.
//! - [`core`] — the HGNAS framework itself: design space, SPOS supernet,
//!   multi-stage hierarchical evolutionary search.
//! - [`fleet`] — the multi-device search service: preemptive fleet
//!   scheduler (shards × thread budget, generation-granular time
//!   slices), streaming fleet reports, asynchronous measurement oracle,
//!   cross-run artifact store (persisted predictors, resumable
//!   checkpoints, warm-start score caches).
//! - [`serve`] — search-as-a-service: a daemon speaking a framed wire
//!   protocol with multi-tenant fair-share admission, event streaming
//!   with disconnect/re-attach, idle-loop store GC and graceful drain.
//!
//! # Quickstart
//!
//! ```no_run
//! use hgnas::core::{Hgnas, SearchConfig, TaskConfig};
//! use hgnas::device::DeviceKind;
//!
//! let task = TaskConfig::tiny(42);
//! let config = SearchConfig::fast(DeviceKind::RaspberryPi3B);
//! let outcome = Hgnas::new(task, config).run();
//! println!("best architecture:\n{}", outcome.best.architecture);
//! ```

pub use hgnas_autograd as autograd;
pub use hgnas_core as core;
pub use hgnas_device as device;
pub use hgnas_fleet as fleet;
pub use hgnas_graph as graph;
pub use hgnas_nn as nn;
pub use hgnas_ops as ops;
pub use hgnas_pointcloud as pointcloud;
pub use hgnas_predictor as predictor;
pub use hgnas_serve as serve;
pub use hgnas_tensor as tensor;
