//! Tentpole acceptance: daemon-served searches are bit-identical to
//! direct `run_fleet` runs.
//!
//! Two tenants with different priorities contend for the daemon's thread
//! budget across a (threads × stride) matrix. Every request's report —
//! produced through fair-share admission, budgeted rounds, parking and
//! resumption, and in one cell a client that disconnects mid-search and
//! re-attaches — must match the direct fleet run bit for bit.

use hgnas::core::{SearchConfig, SearchOutcome, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::fleet::{run_fleet, ArtifactStore, FleetConfig, ParetoPoint, WireReport};
use hgnas::predictor::PredictorConfig;
use hgnas::serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const TICK: Duration = Duration::from_secs(10);
/// Per-frame wait: whole rounds for the other tenant can sit between two
/// of our frames.
const SEARCH: Duration = Duration::from_secs(600);

fn tiny_config(device: DeviceKind, seed: u64) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = PredictorConfig {
        train_samples: 60,
        val_samples: 20,
        epochs: 6,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 2,
    };
    cfg.eval_clouds = 20;
    cfg.seed = seed;
    cfg
}

struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let path = std::env::temp_dir().join(format!(
            "hgnas-daemon-equiv-{tag}-{}-{n}",
            std::process::id()
        ));
        TempStore { path }
    }

    fn open(&self) -> ArtifactStore {
        ArtifactStore::open(&self.path).expect("store dir")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.best.genome, b.best.genome);
    assert_eq!(a.best.architecture, b.best.architecture);
    assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
    assert_eq!(
        a.best.supernet_accuracy.to_bits(),
        b.best.supernet_accuracy.to_bits()
    );
    assert_eq!(a.best.latency_ms.to_bits(), b.best.latency_ms.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "history time diverged");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "history score diverged");
    }
    assert_eq!(a.search_hours.to_bits(), b.search_hours.to_bits());
    assert_eq!(a.reference_ms.to_bits(), b.reference_ms.to_bits());
    assert_eq!(a.eval_stats, b.eval_stats);
    assert_eq!(a.stage1_stats, b.stage1_stats);
    assert_eq!(a.predictor_stats, b.predictor_stats);
}

#[allow(clippy::type_complexity)]
fn front_signature(front: &[ParetoPoint]) -> Vec<(u64, u64, Option<u64>, Option<u64>, Vec<u8>)> {
    front
        .iter()
        .map(|p| {
            (
                p.latency_ms.to_bits(),
                p.accuracy.to_bits(),
                p.energy_mj.map(f64::to_bits),
                p.peak_mem_mb.map(f64::to_bits),
                p.genome.iter().map(|op| op.index() as u8).collect(),
            )
        })
        .collect()
}

/// Daemon report vs direct fleet report, shard by shard, bit for bit —
/// scenario labels and multi-metric Pareto axes included.
fn assert_report_matches_fleet(got: &WireReport, want: &hgnas::fleet::FleetReport) {
    assert_eq!(got.shards.len(), want.reports.len());
    for (g, w) in got.shards.iter().zip(&want.reports) {
        assert_eq!(g.device, w.device);
        assert_eq!(g.scenario, w.scenario);
        assert_outcomes_bit_identical(&g.outcome, &w.outcome);
        assert_eq!(front_signature(&g.pareto), front_signature(&w.pareto));
    }
}

/// The acceptance matrix: alice (priority 3) and bob (priority 1) contend
/// on every (threads × stride) cell; each report must equal the direct
/// `run_fleet` of the same configuration. The (2, 1) cell additionally
/// drops alice's connection mid-search and re-attaches from sequence 0,
/// checking the replayed stream is gapless and the report unchanged.
#[test]
fn contended_tenants_match_run_fleet_across_matrix() {
    let task = TaskConfig::tiny(73);
    let alice_cfg = tiny_config(DeviceKind::Rtx3080, 0);
    let alice_devices = [DeviceKind::Rtx3080, DeviceKind::JetsonTx2];
    let bob_cfg = tiny_config(DeviceKind::RaspberryPi3B, 7);
    let bob_devices = [DeviceKind::RaspberryPi3B, DeviceKind::Rtx3080];

    // Direct references, once per request shape: run_fleet results are
    // scheduling-invariant (pinned by the fleet equivalence matrix), so
    // one unpreempted reference serves every daemon cell.
    let alice_ref = run_fleet(
        &task,
        &alice_cfg,
        &FleetConfig::new(alice_devices.to_vec()),
        None,
    )
    .expect("alice reference");
    let bob_ref = run_fleet(
        &task,
        &bob_cfg,
        &FleetConfig::new(bob_devices.to_vec()),
        None,
    )
    .expect("bob reference");

    for (threads, stride) in [(1usize, 1usize), (1, 2), (2, 1), (2, 2)] {
        let temp = TempStore::new(&format!("m{threads}x{stride}"));
        let server = Server::start(
            temp.open(),
            ServeConfig {
                threads,
                preemption_stride: stride,
                slices_per_round: 2,
                ..ServeConfig::default()
            },
        );
        let mut alice = server.connect();
        alice.hello("alice", 3, TICK).unwrap();
        let (alice_req, shards) = alice
            .submit(&task, &alice_cfg, &alice_devices, TICK)
            .unwrap();
        assert_eq!(shards, alice_devices.len());
        let mut bob = server.connect();
        bob.hello("bob", 1, TICK).unwrap();
        let (bob_req, _) = bob.submit(&task, &bob_cfg, &bob_devices, TICK).unwrap();

        let alice_report = if (threads, stride) == (2, 1) {
            // Disconnect mid-search: read a few live events, vanish, then
            // re-attach from scratch on a fresh connection.
            let mut seen = 0;
            while seen < 3 {
                match alice.next_event(alice_req, SEARCH).unwrap() {
                    Ok(_) => seen += 1,
                    Err(report) => panic!(
                        "search finished after {seen} events — too fast to
                         exercise the disconnect: {report:?}"
                    ),
                }
            }
            drop(alice); // the daemon sees a dead connection and detaches
            let mut alice2 = server.connect();
            alice2.hello("alice", 3, TICK).unwrap();
            alice2.attach(alice_req, "alice", 0).unwrap();
            // The replayed-then-live stream must be gapless from 0.
            let mut next_seq = 0u64;
            let report = alice2
                .wait_report(alice_req, SEARCH, |seq, _event| {
                    assert_eq!(seq, next_seq, "replayed stream has a gap");
                    next_seq += 1;
                })
                .unwrap();
            assert!(next_seq > 3, "replay covered the pre-disconnect events");
            report
        } else {
            let mut next_seq = 0u64;
            alice
                .wait_report(alice_req, SEARCH, |seq, _event| {
                    assert_eq!(seq, next_seq, "live stream has a gap");
                    next_seq += 1;
                })
                .unwrap()
        };
        let bob_report = bob.wait_report(bob_req, SEARCH, |_, _| {}).unwrap();

        // Both requests were genuinely sliced into multiple contended
        // rounds, and the fair share favored alice.
        assert!(
            alice_report.rounds > 1 && bob_report.rounds > 1,
            "cell ({threads},{stride}): contention split both requests \
             across rounds (alice {}, bob {})",
            alice_report.rounds,
            bob_report.rounds
        );
        assert_report_matches_fleet(&alice_report, &alice_ref);
        assert_report_matches_fleet(&bob_report, &bob_ref);

        drop(bob);
        server.shutdown();
    }
}

/// A tenant cannot attach to another tenant's request.
#[test]
fn attach_enforces_tenant_ownership() {
    let temp = TempStore::new("ownership");
    let server = Server::start(
        temp.open(),
        ServeConfig {
            threads: 1,
            preemption_stride: 1,
            slices_per_round: 1,
            ..ServeConfig::default()
        },
    );
    let mut alice = server.connect();
    alice.hello("alice", 1, TICK).unwrap();
    let task = TaskConfig::tiny(79);
    let cfg = tiny_config(DeviceKind::JetsonTx2, 0);
    let (request, _) = alice
        .submit(&task, &cfg, &[DeviceKind::JetsonTx2], TICK)
        .unwrap();

    let mut mallory = server.connect();
    mallory.hello("mallory", 5, TICK).unwrap();
    mallory.attach(request, "mallory", 0).unwrap();
    match mallory.next_event(request, SEARCH) {
        Err(hgnas::serve::ClientError::Rejected { request_id, reason }) => {
            assert_eq!(request_id, request);
            assert!(reason.contains("tenant"), "{reason}");
        }
        other => panic!("expected tenant rejection, got {other:?}"),
    }
    // Alice's search is unharmed.
    let report = alice.wait_report(request, SEARCH, |_, _| {}).unwrap();
    assert_eq!(report.shards.len(), 1);
    drop(alice);
    drop(mallory);
    server.shutdown();
}

/// Scenario acceptance: a {2 tasks × 2 objectives × 2 personas} cross —
/// classification and segmentation, the classic accuracy/latency
/// objective and a multi-metric one pricing energy and peak memory, the
/// builtin Jetson persona and a throttled calibrated variant — submitted
/// through the daemon matches the direct `run_fleet` of the same
/// scenarios shard for shard: labels, per-shard decode geometry, search
/// outcomes, and Pareto fronts (extra axes included) bit for bit.
#[test]
fn scenario_cross_product_matches_run_fleet_through_daemon() {
    use hgnas::device::{builtin_slug, DevicePersona};
    use hgnas::fleet::{cross_scenarios, ObjectiveSpec};
    use hgnas::pointcloud::TaskKind;

    let task = TaskConfig::tiny(83);
    let base = tiny_config(DeviceKind::JetsonTx2, 0);

    let builtin = DevicePersona {
        name: builtin_slug(DeviceKind::JetsonTx2).to_string(),
        profile: DeviceKind::JetsonTx2.profile(),
    };
    let mut slow = DeviceKind::JetsonTx2.profile();
    slow.overhead_us *= 1.5;
    for r in &mut slow.rates {
        r.gflops *= 0.7;
        r.gbps *= 0.7;
    }
    let throttled = DevicePersona {
        name: "tx2-throttled".to_string(),
        profile: slow,
    };

    let scenarios = cross_scenarios(
        &task,
        &base,
        &[TaskKind::Classification, TaskKind::Segmentation],
        &[
            ObjectiveSpec::accuracy_latency("acc-lat", base.alpha, base.beta),
            ObjectiveSpec::accuracy_latency("multi", base.alpha, base.beta)
                .with_energy(0.2, None)
                .with_peak_mem(0.05, None),
        ],
        &[builtin, throttled],
    );
    assert_eq!(scenarios.len(), 8, "2 tasks x 2 objectives x 2 personas");

    let reference = run_fleet(
        &task,
        &base,
        &FleetConfig::over_scenarios(scenarios.clone()),
        None,
    )
    .expect("direct scenario fleet");
    assert_eq!(reference.reports.len(), 8);
    for (r, s) in reference.reports.iter().zip(&scenarios) {
        assert_eq!(r.scenario, s.label);
        assert!(!r.pareto.is_empty(), "{}: empty front", s.label);
        // The multi-metric objective prices energy and peak memory, so its
        // fronts carry the extra axes; the classic objective's do not.
        let priced = s.config.gamma != 0.0;
        for p in &r.pareto {
            assert_eq!(p.energy_mj.is_some(), priced, "{}", s.label);
            assert_eq!(p.peak_mem_mb.is_some(), priced, "{}", s.label);
        }
    }

    let temp = TempStore::new("scenarios");
    let server = Server::start(
        temp.open(),
        ServeConfig {
            threads: 2,
            preemption_stride: 1,
            slices_per_round: 2,
            ..ServeConfig::default()
        },
    );
    let mut client = server.connect();
    client.hello("carol", 2, TICK).unwrap();
    let (request, shards) = client
        .submit_scenarios(&task, &base, &scenarios, TICK)
        .unwrap();
    assert_eq!(shards, scenarios.len());
    let report = client.wait_report(request, SEARCH, |_, _| {}).unwrap();

    for (g, s) in report.shards.iter().zip(&scenarios) {
        assert_eq!(g.scenario, s.label);
        assert_eq!(g.k, s.task.k);
        assert_eq!(g.out_classes, s.task.out_classes());
    }
    assert_report_matches_fleet(&report, &reference);

    drop(client);
    server.shutdown();
}
