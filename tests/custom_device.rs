//! Extensibility check: HGNAS accepts user-defined device profiles — the
//! paper positions the predictor approach as "scalable to other platforms",
//! so the simulator layer must not be closed over the four built-ins.

use hgnas::device::{DeviceKind, DeviceProfile};
use hgnas::ops::{lower_edgeconv, DgcnnConfig};

/// A hypothetical mid-range edge NPU: strong dense compute, weak gather
/// bandwidth, tight memory.
fn edge_npu() -> DeviceProfile {
    let mut p = DeviceKind::JetsonTx2.profile();
    p.rates[2].gflops = 900.0; // Combine: strong MAC array
    p.rates[1].gbps = 2.0; // Aggregate: weak gather
    p.avail_mem_mb = 350.0;
    p.base_mem_mb = 60.0;
    p.mem_factor = 4.0;
    p
}

#[test]
fn custom_profile_executes_and_ooms_sensibly() {
    let npu = edge_npu();
    let w1024 = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let r = npu.execute(&w1024);
    assert!(r.latency_ms > 0.0);

    // The tight memory budget should OOM before the Pi does.
    let w2048 = lower_edgeconv(&DgcnnConfig::paper(40), 2048);
    assert!(npu.execute(&w2048).oom);
}

#[test]
fn custom_profile_has_distinct_bottleneck_shape() {
    let npu = edge_npu();
    let tx2 = DeviceKind::JetsonTx2.profile();
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let npu_frac = npu.execute(&w).breakdown_fractions();
    let tx2_frac = tx2.execute(&w).breakdown_fractions();
    // Weaker gather should raise the aggregate share relative to the TX2.
    assert!(npu_frac[1] > tx2_frac[1]);
}
