//! Fleet-grade equivalence harness: the scheduler matrix.
//!
//! The scheduler's contract is absolute — any (shard count × thread
//! budget × preemption stride) cell must produce per-shard results
//! bit-identical to serial `Hgnas::run_with` runs, through transient
//! measurement-fault storms, slice-budget kills resumed via the artifact
//! store, and warm-started score caches.

use hgnas::core::{Hgnas, LatencyMode, SearchConfig, SearchOutcome, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::fleet::{
    event_channel, run_fleet, run_fleet_with_events, ArtifactStore, FleetConfig, FleetEvent,
    OracleConfig, ParetoPoint, Scheduler, SchedulerConfig, ShardSpec, StreamingReporter,
};
use hgnas::predictor::PredictorConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tiny_config(device: DeviceKind, mode: LatencyMode) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = PredictorConfig {
        train_samples: 60,
        val_samples: 20,
        epochs: 6,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 2,
    };
    cfg.eval_clouds = 20;
    cfg.latency_mode = mode;
    cfg
}

/// A unique, self-cleaning store directory per test.
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let path =
            std::env::temp_dir().join(format!("hgnas-equiv-test-{tag}-{}-{n}", std::process::id()));
        TempStore { path }
    }

    fn open(&self) -> ArtifactStore {
        ArtifactStore::open(&self.path).expect("store dir")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn shard(task: &TaskConfig, device: DeviceKind, seed: u64, mode: LatencyMode) -> ShardSpec {
    let mut cfg = tiny_config(device, mode);
    cfg.seed = seed;
    ShardSpec::new(task.clone(), cfg)
}

/// Serial references, computed once per distinct (device, seed, mode).
struct References {
    task: TaskConfig,
    cache: HashMap<(DeviceKind, u64, bool), SearchOutcome>,
}

impl References {
    fn new(task: TaskConfig) -> Self {
        References {
            task,
            cache: HashMap::new(),
        }
    }

    fn get(&mut self, device: DeviceKind, seed: u64, mode: LatencyMode) -> &SearchOutcome {
        let task = &self.task;
        self.cache
            .entry((device, seed, mode == LatencyMode::Measured))
            .or_insert_with(|| {
                let mut cfg = tiny_config(device, mode);
                cfg.seed = seed;
                Hgnas::new(task.clone(), cfg).run()
            })
    }
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.best.genome, b.best.genome);
    assert_eq!(a.best.architecture, b.best.architecture);
    assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
    assert_eq!(
        a.best.supernet_accuracy.to_bits(),
        b.best.supernet_accuracy.to_bits()
    );
    assert_eq!(a.best.latency_ms.to_bits(), b.best.latency_ms.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "history time diverged");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "history score diverged");
    }
    assert_eq!(a.search_hours.to_bits(), b.search_hours.to_bits());
    assert_eq!(a.eval_stats, b.eval_stats);
    assert_eq!(a.stage1_stats, b.stage1_stats);
    assert_eq!(a.predictor_stats, b.predictor_stats);
}

/// Bit-level signature of one Pareto point: latency, accuracy, genome.
type FrontSignature = Vec<(u64, u64, Vec<u8>)>;

fn front_signature(front: &[ParetoPoint]) -> FrontSignature {
    front
        .iter()
        .map(|p| {
            (
                p.latency_ms.to_bits(),
                p.accuracy.to_bits(),
                p.genome.iter().map(|op| op.index() as u8).collect(),
            )
        })
        .collect()
}

/// Tentpole acceptance: every (shard count × thread budget × preemption
/// stride) cell — shards ≫ devices included — yields per-shard outcomes
/// bit-identical to serial runs, and Pareto fronts identical across
/// cells.
#[test]
fn scheduler_matrix_is_bit_identical_to_serial() {
    let task = TaskConfig::tiny(21);
    // Five shards over three devices: two devices carry multiple seeds,
    // so the fleet is wider than `DeviceKind` could ever make it.
    let shards: Vec<(DeviceKind, u64)> = vec![
        (DeviceKind::Rtx3080, 0),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::RaspberryPi3B, 0),
        (DeviceKind::Rtx3080, 1),
        (DeviceKind::JetsonTx2, 2),
    ];
    let mut refs = References::new(task.clone());
    // (shard count, thread budget, preemption stride): a budget smaller
    // than the shard count, a fully serial worker, and an unpreempted
    // bounded pool.
    let cells = [(5usize, 2usize, 1usize), (3, 1, 2), (4, 3, 0)];
    let mut fronts: HashMap<(DeviceKind, u64), FrontSignature> = HashMap::new();

    for (nshards, threads, stride) in cells {
        let specs: Vec<ShardSpec> = shards[..nshards]
            .iter()
            .map(|&(d, s)| shard(&task, d, s, LatencyMode::Predictor))
            .collect();
        let scheduler = Scheduler::new(
            specs,
            SchedulerConfig {
                threads,
                preemption_stride: stride,
                ..SchedulerConfig::default()
            },
        );
        let report = scheduler.run(None, None).expect("no store, no errors");
        assert_eq!(report.shards.len(), nshards);
        for (result, &(device, seed)) in report.shards.iter().zip(&shards) {
            assert_eq!(result.device, device);
            let outcome = result
                .outcome
                .as_ref()
                .expect("unbudgeted scheduler finishes every shard");
            assert_outcomes_bit_identical(outcome, refs.get(device, seed, LatencyMode::Predictor));
            if stride > 0 {
                assert!(
                    result.slices > 1,
                    "cell ({nshards},{threads},{stride}): preemption never fired"
                );
            } else {
                assert_eq!(result.slices, 1, "unpreempted shards run in one slice");
            }
            assert!(!result.pareto.is_empty());
            let sig = front_signature(&result.pareto);
            match fronts.entry((device, seed)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(
                        e.get(),
                        &sig,
                        "cell ({nshards},{threads},{stride}): Pareto front diverged"
                    );
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(sig);
                }
            }
        }
    }
}

/// Tentpole acceptance (PR 5, re-keyed in PR 7): with a fine preemption
/// stride and an unbounded session memory budget, the scheduler computes
/// each *distinct prefix* (Stage 1 + supernet pre-training) exactly once
/// — the three seed-0 shards share one session across their different
/// devices, the seed-3 shard owns its own — every later slice is a
/// session-cache hit — and stays bit-identical to serial; with
/// `session_memory_budget: Some(0)` and no store the cache degrades to
/// the old replay-per-slice path, still bit-identical, with the same
/// Pareto fronts.
#[test]
fn session_cache_pretrains_once_per_shard_and_budget_zero_replays() {
    let task = TaskConfig::tiny(41);
    let shards = [
        (DeviceKind::Rtx3080, 0u64),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::RaspberryPi3B, 0),
        (DeviceKind::Rtx3080, 3),
    ];
    let specs: Vec<ShardSpec> = shards
        .iter()
        .map(|&(d, s)| shard(&task, d, s, LatencyMode::Predictor))
        .collect();
    let mut refs = References::new(task.clone());
    let mut fronts: HashMap<(DeviceKind, u64), FrontSignature> = HashMap::new();

    // Unbounded budget: stride 1 over 4 shards, 2 distinct prefixes
    // (seeds 0 and 3 — the device is not prefix-relevant), so exactly 2
    // builds fleet-wide.
    let report = Scheduler::new(
        specs.clone(),
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            ..SchedulerConfig::default()
        },
    )
    .run(None, None)
    .expect("storeless run");
    assert_eq!(
        report.session_stats.builds, 2,
        "one build per distinct prefix, not per shard"
    );
    assert_eq!(report.session_stats.evictions, 0);
    assert!(report.session_stats.hits > 0, "later slices hit the cache");
    let total_builds: u64 = report.shards.iter().map(|r| r.prefix_builds).sum();
    assert_eq!(total_builds, 2, "per-shard builds sum to distinct prefixes");
    for (result, &(device, seed)) in report.shards.iter().zip(&shards) {
        assert!(result.slices > 1, "stride 1 slices every shard");
        assert!(
            result.prefix_builds <= 1,
            "shard {}: supernet pre-training ran at most once",
            result.shard
        );
        // Hits, restores and builds are three disjoint claim outcomes;
        // every executed slice resolves to exactly one of them.
        assert_eq!(
            result.prefix_builds + result.session_hits + result.session_restores,
            result.slices,
            "shard {}: disjoint session outcomes cover every slice",
            result.shard
        );
        let outcome = result.outcome.as_ref().expect("all shards finish");
        assert_outcomes_bit_identical(outcome, refs.get(device, seed, LatencyMode::Predictor));
        fronts.insert((device, seed), front_signature(&result.pareto));
    }

    // Budget 0, no store: every slice evicts immediately and the next one
    // replays — today's degraded path, bit-identical with equal fronts.
    let report = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            session_memory_budget: Some(0),
            ..SchedulerConfig::default()
        },
    )
    .run(None, None)
    .expect("storeless run");
    assert!(report.session_stats.evictions > 0, "budget 0 evicts");
    assert_eq!(report.session_stats.spills, 0, "no store, nothing spilled");
    assert_eq!(report.session_stats.hits, 0, "nothing stays resident");
    for (result, &(device, seed)) in report.shards.iter().zip(&shards) {
        assert_eq!(
            result.prefix_builds, result.slices,
            "budget 0 without a store replays the prefix every slice"
        );
        let outcome = result.outcome.as_ref().expect("all shards finish");
        assert_outcomes_bit_identical(outcome, refs.get(device, seed, LatencyMode::Predictor));
        assert_eq!(
            fronts[&(device, seed)],
            front_signature(&result.pareto),
            "replay cell changed a Pareto front"
        );
    }
}

/// Mid-run eviction under a budget that fits roughly one session: parked
/// shards lose their sessions while running ones proceed. With a store
/// attached the evictions spill and later slices restore from disk — the
/// prefix still runs exactly once per shard; results stay bit-identical
/// either way. The seeds differ so the three shards own three *distinct*
/// prefixes — same-seed shards would share a single session and the
/// budget would never fire.
#[test]
fn tight_session_budget_evicts_mid_run_without_changing_results() {
    let task = TaskConfig::tiny(43);
    let shards = [
        (DeviceKind::Rtx3080, 0u64),
        (DeviceKind::JetsonTx2, 1),
        (DeviceKind::RaspberryPi3B, 2),
    ];
    let specs: Vec<ShardSpec> = shards
        .iter()
        .map(|&(d, s)| shard(&task, d, s, LatencyMode::Predictor))
        .collect();
    // A budget that holds one session but never two.
    let one_session = Hgnas::new(task.clone(), specs[0].config.clone())
        .prepare_session()
        .approx_bytes();
    let budget = one_session * 3 / 2;
    let mut refs = References::new(task.clone());

    // Without a store: evictions degrade to replays.
    let report = Scheduler::new(
        specs.clone(),
        SchedulerConfig {
            threads: 1,
            preemption_stride: 1,
            session_memory_budget: Some(budget),
            ..SchedulerConfig::default()
        },
    )
    .run(None, None)
    .expect("storeless run");
    assert!(
        report.session_stats.evictions > 0,
        "the budget genuinely evicted mid-run: {:?}",
        report.session_stats
    );
    for (result, &(device, seed)) in report.shards.iter().zip(&shards) {
        assert_outcomes_bit_identical(
            result.outcome.as_ref().expect("all shards finish"),
            refs.get(device, seed, LatencyMode::Predictor),
        );
    }

    // With a store: evictions spill (once per immutable session) and later
    // slices restore — pre-training still runs exactly once per shard.
    let temp = TempStore::new("tight-budget");
    let store = temp.open();
    let report = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 1,
            preemption_stride: 1,
            session_memory_budget: Some(budget),
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("stored run");
    assert!(report.session_stats.evictions > 0);
    assert!(report.session_stats.spills > 0, "evictions spilled to disk");
    assert!(report.session_stats.restores > 0, "spills were restored");
    for (result, &(device, seed)) in report.shards.iter().zip(&shards) {
        assert_eq!(
            result.prefix_builds, 1,
            "spill/restore keeps pre-training at once per shard"
        );
        assert_outcomes_bit_identical(
            result.outcome.as_ref().expect("all shards finish"),
            refs.get(device, seed, LatencyMode::Predictor),
        );
    }
}

/// Tentpole acceptance (PR 7): K shards differing only in their EA
/// stage-2 seed share one prefix fingerprint, so a stride-1 fleet
/// performs exactly ONE prefix build fleet-wide (single-flight dedup) no
/// matter the thread budget; outcomes stay bit-identical to serial
/// across a (threads × stride) matrix; and the shared session survives a
/// kill/resume through an `ArtifactKind::Session` spill with zero
/// rebuilds in the resume round.
#[test]
fn shared_prefix_fleet_builds_the_prefix_exactly_once() {
    let task = TaskConfig::tiny(53);
    let device = DeviceKind::JetsonTx2;
    let seeds = [0u64, 1, 2, 3];
    let specs: Vec<ShardSpec> = seeds
        .iter()
        .map(|&s| {
            let mut cfg = tiny_config(device, LatencyMode::Predictor);
            cfg.ea_stage2.seed = s;
            ShardSpec::new(task.clone(), cfg)
        })
        .collect();
    // Serial references, one per stage-2 seed.
    let refs: Vec<SearchOutcome> = specs
        .iter()
        .map(|sp| Hgnas::new(sp.task.clone(), sp.config.clone()).run())
        .collect();

    // Thread budgets above 1 race claimants into the single-flight path
    // (defer + re-queue); the build count must stay at one regardless.
    for (threads, stride) in [(1usize, 1usize), (2, 1), (3, 1), (2, 2)] {
        let report = Scheduler::new(
            specs.clone(),
            SchedulerConfig {
                threads,
                preemption_stride: stride,
                ..SchedulerConfig::default()
            },
        )
        .run(None, None)
        .expect("storeless run");
        let built: u64 = report.shards.iter().map(|r| r.prefix_builds).sum();
        assert_eq!(
            built, 1,
            "cell ({threads},{stride}): the shared prefix was built exactly once"
        );
        assert_eq!(report.session_stats.builds, 1);
        assert_eq!(report.session_stats.evictions, 0);
        for (result, reference) in report.shards.iter().zip(&refs) {
            assert_eq!(
                result.prefix_builds + result.session_hits + result.session_restores,
                result.slices,
                "cell ({threads},{stride}) shard {}: disjoint outcomes cover every slice",
                result.shard
            );
            assert_outcomes_bit_identical(
                result.outcome.as_ref().expect("all shards finish"),
                reference,
            );
        }
    }

    // Kill mid-fleet with the shared session force-spilled (budget 0 +
    // store); a fresh scheduler restores it off disk — zero prefix
    // rebuilds in round 2.
    let temp = TempStore::new("shared-prefix");
    let store = temp.open();
    let round1 = Scheduler::new(
        specs.clone(),
        SchedulerConfig {
            threads: 1,
            preemption_stride: 1,
            max_slices: Some(3),
            session_memory_budget: Some(0),
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("parking is not an error");
    assert!(
        round1.shards.iter().any(|s| s.outcome.is_none()),
        "the slice budget interrupted the fleet"
    );
    assert!(
        round1.session_stats.spills > 0,
        "the shared session spilled"
    );
    let built: u64 = round1.shards.iter().map(|r| r.prefix_builds).sum();
    assert_eq!(built, 1, "even forced spills rebuild nothing: one build");

    let round2 = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 1,
            preemption_stride: 1,
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("resume round");
    assert_eq!(
        round2.session_stats.builds, 0,
        "round 2 restored the spilled shared session instead of rebuilding: {:?}",
        round2.session_stats
    );
    assert_eq!(
        round2.session_stats.restores, 1,
        "one restore re-seeded the cache for every shard"
    );
    for (result, reference) in round2.shards.iter().zip(&refs) {
        assert_outcomes_bit_identical(
            result
                .outcome
                .as_ref()
                .expect("round 2 finishes everything"),
            reference,
        );
    }
}

/// Kill/resume through a spilled `ArtifactKind::Session`: round 1 runs
/// out of slice budget with sessions force-spilled to the store; round 2
/// (a fresh scheduler, empty in-memory cache) restores them from disk
/// instead of re-running Stage 1 + pre-training, and finishes
/// bit-identically to serial.
#[test]
fn kill_and_resume_through_spilled_session_artifacts() {
    let task = TaskConfig::tiny(47);
    let shards = [
        (DeviceKind::Rtx3080, 0u64),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::Rtx3080, 7),
    ];
    let specs: Vec<ShardSpec> = shards
        .iter()
        .map(|&(d, s)| shard(&task, d, s, LatencyMode::Predictor))
        .collect();
    let temp = TempStore::new("spilled-session");
    let store = temp.open();

    // Round 1: budget 0 forces every built session straight to disk; the
    // slice budget parks the fleet mid-run.
    let round1 = Scheduler::new(
        specs.clone(),
        SchedulerConfig {
            threads: 1,
            preemption_stride: 1,
            max_slices: Some(4),
            session_memory_budget: Some(0),
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("parking is not an error");
    assert!(
        round1.shards.iter().any(|s| s.outcome.is_none()),
        "the slice budget interrupted the fleet"
    );
    assert!(round1.session_stats.spills > 0, "sessions spilled");
    let spilled_sessions = std::fs::read_dir(store.root())
        .expect("store dir")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("session-")
        })
        .count();
    assert!(spilled_sessions > 0, "session artifacts exist on disk");

    // Round 2: fresh scheduler, unbounded cache. Shards round 1 touched
    // restore their sessions from the spill — zero prefix builds.
    let round2 = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 1,
            preemption_stride: 1,
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("resume round");
    assert!(
        round2.session_stats.restores > 0,
        "round 2 restored spilled sessions: {:?}",
        round2.session_stats
    );
    assert!(
        round2.session_stats.builds < shards.len() as u64,
        "at least one shard skipped its prefix entirely"
    );
    let mut refs = References::new(task);
    for (result, &(device, seed)) in round2.shards.iter().zip(&shards) {
        assert_outcomes_bit_identical(
            result
                .outcome
                .as_ref()
                .expect("round 2 finishes everything"),
            refs.get(device, seed, LatencyMode::Predictor),
        );
    }
}

/// Fault injection: a transient `MeasureError::Busy` storm (every request
/// fails its first attempt) through preempted measured-mode shards stays
/// bit-transparent.
#[test]
fn preempted_measured_shards_survive_busy_storms() {
    let task = TaskConfig::tiny(23);
    let shards = [
        (DeviceKind::Rtx3080, 0u64),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::Rtx3080, 5),
    ];
    let specs: Vec<ShardSpec> = shards
        .iter()
        .map(|&(d, s)| shard(&task, d, s, LatencyMode::Measured))
        .collect();
    let scheduler = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            oracle: OracleConfig {
                inject_busy_every: Some(1), // the storm: every request faults
                ..OracleConfig::default()
            },
            ..SchedulerConfig::default()
        },
    );
    let report = scheduler.run(None, None).expect("storms are transient");
    let stats = report.oracle_stats.expect("measured mode has oracle stats");
    assert!(stats.requests > 0);
    assert_eq!(
        stats.injected_faults, stats.requests,
        "every request hit the storm"
    );
    assert!(stats.retries >= stats.injected_faults);

    let mut refs = References::new(task);
    for (result, &(device, seed)) in report.shards.iter().zip(&shards) {
        assert!(result.slices > 1, "preemption fired under the storm");
        assert_outcomes_bit_identical(
            result.outcome.as_ref().expect("all shards finish"),
            refs.get(device, seed, LatencyMode::Measured),
        );
    }
}

/// Mid-slice kill/resume through the store: exhausting the slice budget
/// parks every unfinished shard with a persisted checkpoint; a second
/// scheduler run picks them all up and finishes bit-identically to
/// serial.
#[test]
fn slice_budget_kill_and_resume_through_store() {
    let task = TaskConfig::tiny(29);
    let shards = [
        (DeviceKind::Rtx3080, 0u64),
        (DeviceKind::JetsonTx2, 0),
        (DeviceKind::RaspberryPi3B, 0),
        (DeviceKind::Rtx3080, 9),
    ];
    let specs: Vec<ShardSpec> = shards
        .iter()
        .map(|&(d, s)| shard(&task, d, s, LatencyMode::Predictor))
        .collect();
    let temp = TempStore::new("budget");
    let store = temp.open();

    // Round 1: 5 slices across 4 shards needing 3 slices each — the
    // budget dies mid-fleet.
    let round1 = Scheduler::new(
        specs.clone(),
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            max_slices: Some(5),
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("parking is not an error");
    let unfinished = round1.shards.iter().filter(|s| s.outcome.is_none()).count();
    assert!(unfinished > 0, "the budget genuinely interrupted the fleet");
    let sliced: u64 = round1.shards.iter().map(|s| s.slices).sum();
    assert_eq!(sliced, 5, "exactly the budget was consumed");

    // Round 2: unbudgeted, same store — every shard resumes (or cold
    // starts, if round 1 never reached it) and finishes.
    let round2 = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            ..SchedulerConfig::default()
        },
    )
    .run(Some(&store), None)
    .expect("resume round");
    let mut refs = References::new(task);
    let mut resumed = 0;
    for (result, &(device, seed)) in round2.shards.iter().zip(&shards) {
        if let Some(g) = result.resumed_from_generation {
            assert!(g >= 1, "store checkpoints are generation boundaries");
            resumed += 1;
        }
        assert_outcomes_bit_identical(
            result
                .outcome
                .as_ref()
                .expect("round 2 finishes everything"),
            refs.get(device, seed, LatencyMode::Predictor),
        );
    }
    assert!(
        resumed > 0,
        "at least one shard resumed a round-1 checkpoint"
    );
}

/// Warm-start through the driver: after the checkpoints are gone (e.g.
/// GC'd), a warm-started fleet rebuilds the identical result from the
/// persisted score caches, consuming `eval_stats.imported` promotions
/// instead of re-scoring.
#[test]
fn fleet_warm_start_consumes_imported_cache_without_changing_results() {
    let task = TaskConfig::tiny(31);
    let devices = [DeviceKind::Rtx3080, DeviceKind::JetsonTx2];
    let base = tiny_config(devices[0], LatencyMode::Predictor);
    let temp = TempStore::new("warmfleet");
    let store = temp.open();
    let fleet = FleetConfig::new(devices.to_vec());

    let cold = run_fleet(&task, &base, &fleet, Some(&store)).expect("cold fleet");

    // Lose the checkpoints (keep predictors and score caches): the warm
    // start must rebuild from imports alone.
    for entry in std::fs::read_dir(store.root()).expect("store dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("checkpoint-") || name.starts_with("onestage-") {
            std::fs::remove_file(entry.path()).expect("drop checkpoint");
        }
    }

    let mut warm_fleet = fleet.clone();
    warm_fleet.warm_start_seed = Some(base.seed);
    let warm = run_fleet(&task, &base, &warm_fleet, Some(&store)).expect("warm fleet");

    for (c, w) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(
            w.resumed_from_generation, None,
            "{}: checkpoints were deleted",
            w.device
        );
        let (cs, ws) = (
            c.outcome.eval_stats.expect("stats"),
            w.outcome.eval_stats.expect("stats"),
        );
        assert!(ws.imported > 0, "{}: imports consumed", w.device);
        assert!(
            ws.validated > 0 && ws.rejected == 0,
            "{}: the import survived its validation sample: {ws:?}",
            w.device
        );
        assert_eq!(
            ws.misses + ws.imported,
            cs.misses,
            "{}: every import replaces one cold miss",
            w.device
        );
        assert_eq!(ws.hits, cs.hits);
        assert_eq!(ws.submitted, cs.submitted);
        // The searched result is bit-identical.
        assert_eq!(w.outcome.best.genome, c.outcome.best.genome);
        assert_eq!(
            w.outcome.best.score.to_bits(),
            c.outcome.best.score.to_bits()
        );
        assert_eq!(
            w.outcome.search_hours.to_bits(),
            c.outcome.search_hours.to_bits()
        );
        assert_eq!(front_signature(&w.pareto), front_signature(&c.pareto));
    }
}

/// Streaming reports: the event stream covers the whole fleet lifecycle
/// in a sane order, and the reporter's snapshot reflects it.
#[test]
fn streaming_reports_cover_the_fleet_lifecycle() {
    let task = TaskConfig::tiny(37);
    let devices = [DeviceKind::Rtx3080, DeviceKind::RaspberryPi3B];
    let base = tiny_config(devices[0], LatencyMode::Predictor);
    let mut fleet = FleetConfig::new(devices.to_vec());
    fleet.threads = 1; // deterministic single-worker interleaving
    fleet.preemption_stride = 1;

    let (tx, rx) = event_channel();
    let (report, events) = std::thread::scope(|s| {
        let consumer = s.spawn(move || rx.iter().collect::<Vec<FleetEvent>>());
        let report = run_fleet_with_events(&task, &base, &fleet, None, Some(tx));
        (report, consumer.join().expect("consumer thread"))
    });
    let report = report.expect("fleet run");
    assert_eq!(report.reports.len(), devices.len());

    // Per-shard ordering: started first, generations non-decreasing,
    // finished exactly once at the end.
    for shard in 0..devices.len() {
        let mine: Vec<&FleetEvent> = events.iter().filter(|e| e.shard() == shard).collect();
        assert!(
            matches!(mine.first(), Some(FleetEvent::ShardStarted { .. })),
            "shard {shard}: first event is ShardStarted"
        );
        assert!(
            matches!(mine.last(), Some(FleetEvent::ShardFinished { .. })),
            "shard {shard}: last event is ShardFinished"
        );
        let mut last_gen = 0;
        let mut finished = 0;
        let mut preemptions = 0;
        for ev in &mine {
            match ev {
                FleetEvent::GenerationDone { generation, .. } => {
                    assert!(*generation >= last_gen, "generations ran backwards");
                    last_gen = *generation;
                }
                FleetEvent::ShardPreempted { .. } => preemptions += 1,
                FleetEvent::ShardFinished { .. } => finished += 1,
                _ => {}
            }
        }
        assert_eq!(finished, 1);
        assert!(preemptions > 0, "stride 1 preempts every shard");
        assert_eq!(last_gen, base.ea_stage2.iterations);
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FleetEvent::ParetoUpdated { front, .. } if !front.is_empty())),
        "at least one non-empty Pareto update streamed"
    );

    // The reporter folds the same stream into a complete snapshot.
    let mut reporter = StreamingReporter::new(devices.len());
    for ev in &events {
        reporter.observe(ev);
    }
    assert!(reporter.is_complete());
    let snap = reporter.snapshot();
    for d in devices {
        assert!(
            snap.contains(d.name()),
            "snapshot lists {}: {snap}",
            d.name()
        );
    }
    assert!(
        snap.contains("done in"),
        "snapshot shows terminal rows: {snap}"
    );
}

/// Satellite acceptance (task × persona matrix): every scenario shard —
/// classification and segmentation, builtin and recalibrated personas —
/// comes out of the preempting scheduler bit-identical to a serial
/// `Hgnas::run` of that scenario's own (task, config) pair, scenario
/// labels survive the trip, and the classification shard on the untouched
/// builtin persona is bit-identical to the legacy device-keyed run (a
/// persona that merely names the builtin profile perturbs nothing).
#[test]
fn task_persona_shard_matrix_is_bit_identical_to_serial() {
    use hgnas::device::{builtin_slug, DevicePersona};
    use hgnas::fleet::{cross_scenarios, ObjectiveSpec};
    use hgnas::pointcloud::TaskKind;

    let base_task = TaskConfig::tiny(21);
    let base = tiny_config(DeviceKind::JetsonTx2, LatencyMode::Predictor);

    let builtin = DevicePersona {
        name: builtin_slug(DeviceKind::JetsonTx2).to_string(),
        profile: DeviceKind::JetsonTx2.profile(),
    };
    let mut throttled_profile = DeviceKind::JetsonTx2.profile();
    throttled_profile.overhead_us *= 2.0;
    for r in &mut throttled_profile.rates {
        r.gflops *= 0.6;
        r.gbps *= 0.6;
    }
    let throttled = DevicePersona {
        name: "tx2-throttled".to_string(),
        profile: throttled_profile,
    };

    let scenarios = cross_scenarios(
        &base_task,
        &base,
        &[TaskKind::Classification, TaskKind::Segmentation],
        &[ObjectiveSpec::accuracy_latency(
            "acc-lat", base.alpha, base.beta,
        )],
        &[builtin, throttled],
    );
    assert_eq!(scenarios.len(), 4, "2 tasks x 1 objective x 2 personas");
    assert_eq!(scenarios[0].label, "classification/acc-lat/jetson-tx2");
    assert_eq!(scenarios[3].label, "segmentation/acc-lat/tx2-throttled");

    let specs: Vec<ShardSpec> = scenarios
        .iter()
        .map(|s| ShardSpec::new(s.task.clone(), s.config.clone()).with_scenario(s.label.clone()))
        .collect();
    let report = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: 2,
            preemption_stride: 1,
            ..SchedulerConfig::default()
        },
    )
    .run(None, None)
    .expect("storeless scenario matrix");

    for (result, scenario) in report.shards.iter().zip(&scenarios) {
        assert_eq!(result.scenario, scenario.label);
        assert_eq!(result.device, DeviceKind::JetsonTx2);
        let outcome = result
            .outcome
            .as_ref()
            .expect("unbudgeted scheduler finishes every shard");
        let serial = Hgnas::new(scenario.task.clone(), scenario.config.clone()).run();
        assert_outcomes_bit_identical(outcome, &serial);
        assert!(!result.pareto.is_empty(), "{}", scenario.label);
    }

    // Classification on the untouched builtin persona == the legacy
    // device-keyed search: `with_persona` of the builtin profile leaves
    // the classification path bit-identical.
    let legacy = Hgnas::new(base_task, base).run();
    let first = report.shards[0].outcome.as_ref().unwrap();
    assert_outcomes_bit_identical(first, &legacy);
}
