//! Integration tests asserting the paper's qualitative claims hold across
//! the stack (the "shape" of the reproduction).

use hgnas::device::{DeviceKind, OpClass};
use hgnas::nn::Module;
use hgnas::ops::train::{evaluate, fit, FitConfig};
use hgnas::ops::{
    dgcnn, knn_reuse_baseline, lower_edgeconv, tailor_baseline, DgcnnConfig, GnnModel,
};
use hgnas::pointcloud::{DatasetConfig, SynthNet40};
use hgnas::predictor::{LatencyPredictor, PredictorConfig, PredictorContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn observation1_knn_reuse_trades_tiny_accuracy_for_big_speedup() {
    // Fig. 2(b): reusing sampled results cuts latency a lot, accuracy a
    // little.
    let ds = SynthNet40::generate(&DatasetConfig::tiny(31));
    let fit_cfg = FitConfig::quick().with_epochs(12);

    let mut rng = StdRng::seed_from_u64(1);
    let mut full = dgcnn(&mut rng, DgcnnConfig::small(ds.classes));
    fit(&mut full, &ds.train, &fit_cfg);
    let full_eval = evaluate(&full, &ds.test, ds.classes, 3);

    let mut rng = StdRng::seed_from_u64(1);
    let mut reused = knn_reuse_baseline(&mut rng, DgcnnConfig::small(ds.classes));
    fit(&mut reused, &ds.train, &fit_cfg);
    let reused_eval = evaluate(&reused, &ds.test, ds.classes, 3);

    let gpu = DeviceKind::Rtx3080.profile();
    let mut paper_reuse = DgcnnConfig::paper(40);
    paper_reuse.dynamic = false;
    paper_reuse.reuse_after = 1;
    let lat_full = gpu
        .execute(&lower_edgeconv(&DgcnnConfig::paper(40), 1024))
        .latency_ms;
    let lat_reuse = gpu.execute(&lower_edgeconv(&paper_reuse, 1024)).latency_ms;

    assert!(lat_reuse < 0.7 * lat_full, "reuse speedup too small");
    assert!(
        reused_eval.overall > full_eval.overall - 0.25,
        "accuracy collapsed: {} vs {}",
        reused_eval.overall,
        full_eval.overall
    );
}

#[test]
fn observation3_same_model_different_bottlenecks_per_platform() {
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let rtx = DeviceKind::Rtx3080.profile().execute(&w);
    let i7 = DeviceKind::I78700K.profile().execute(&w);
    // GPU: sample-bound. CPU: aggregate-bound. Same workload.
    let rtx_f = rtx.breakdown_fractions();
    let i7_f = i7.breakdown_fractions();
    assert!(rtx_f[OpClass::Sample.index()] > rtx_f[OpClass::Aggregate.index()]);
    assert!(i7_f[OpClass::Aggregate.index()] > i7_f[OpClass::Sample.index()]);
}

#[test]
fn predictor_ranks_architectures_usefully() {
    // The search only needs ranking fidelity: a clearly-light architecture
    // must be predicted faster than a clearly-heavy one.
    use hgnas::ops::{Aggregator, Architecture, MessageType, Operation, SampleFn};
    let ctx = PredictorContext {
        positions: 6,
        points: 128,
        k: 10,
        classes: 4,
        head_hidden: vec![16],
    };
    let cfg = PredictorConfig {
        train_samples: 150,
        val_samples: 50,
        epochs: 12,
        lr: 3e-3,
        gcn_dims: vec![24, 24],
        mlp_hidden: vec![16],
        seed: 3,
        global_node: true,
        batch: 1,
    };
    let (p, _) = LatencyPredictor::train(DeviceKind::JetsonTx2, &ctx, &cfg);
    let light = Architecture::new(
        vec![
            Operation::Sample(SampleFn::Random),
            Operation::Combine { dim: 8 },
        ],
        10,
        4,
    );
    let heavy = Architecture::new(
        vec![
            Operation::Sample(SampleFn::Knn),
            Operation::Combine { dim: 256 },
            Operation::Aggregate {
                agg: Aggregator::Max,
                msg: MessageType::Full,
            },
            Operation::Sample(SampleFn::Knn),
            Operation::Aggregate {
                agg: Aggregator::Max,
                msg: MessageType::Full,
            },
            Operation::Combine { dim: 256 },
        ],
        10,
        4,
    );
    assert!(
        p.predict_ms(&light) < p.predict_ms(&heavy),
        "light {} !< heavy {}",
        p.predict_ms(&light),
        p.predict_ms(&heavy)
    );
}

#[test]
fn tailor_baseline_matches_paper_relationships() {
    // [7] is faster than DGCNN on every device (Tab. II) and trains to a
    // comparable accuracy on the synthetic task.
    let ds = SynthNet40::generate(&DatasetConfig::tiny(32));
    let fit_cfg = FitConfig::quick().with_epochs(12);

    let mut rng = StdRng::seed_from_u64(5);
    let mut dg = dgcnn(&mut rng, DgcnnConfig::small(ds.classes));
    fit(&mut dg, &ds.train, &fit_cfg);
    let dg_eval = evaluate(&dg, &ds.test, ds.classes, 3);

    let mut rng = StdRng::seed_from_u64(5);
    let mut tailor = GnnModel::new(&mut rng, tailor_baseline(false, 8, ds.classes), &[16]);
    fit(&mut tailor, &ds.train, &fit_cfg);
    let tailor_eval = evaluate(&tailor, &ds.test, ds.classes, 3);

    assert!(
        tailor_eval.overall > dg_eval.overall - 0.3,
        "[7] collapsed: {} vs DGCNN {}",
        tailor_eval.overall,
        dg_eval.overall
    );

    let dg_w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let ta_w = tailor_baseline(true, 20, 40).lower(1024, &[128]);
    for persona in hgnas::device::PersonaRegistry::builtin().edge_targets() {
        let p = &persona.profile;
        assert!(
            p.execute(&ta_w).latency_ms < p.execute(&dg_w).latency_ms,
            "{}",
            persona.name
        );
    }
}

#[test]
fn model_size_metric_matches_workload_params() {
    // `Module::size_mb` (live parameters) and the lowering's param_bytes
    // must agree — Table II's size column depends on it.
    let mut rng = StdRng::seed_from_u64(6);
    let model = dgcnn(&mut rng, DgcnnConfig::paper(40));
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let lowered_mb = w.param_bytes / (1024.0 * 1024.0);
    assert!(
        (model.size_mb() - lowered_mb).abs() < 0.01,
        "{} vs {}",
        model.size_mb(),
        lowered_mb
    );
}
