//! Cross-crate integration tests: the full HGNAS pipeline at tiny scale.

use hgnas::core::{Hgnas, LatencyMode, SearchConfig, Strategy, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::nn::Module;
use hgnas::ops::train::{evaluate, fit, FitConfig};
use hgnas::ops::{lower_edgeconv, merge_adjacent_samples, GnnModel};
use hgnas::pointcloud::SynthNet40;
use hgnas::predictor::PredictorConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_config(device: DeviceKind) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.population = 3;
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage2.population = 6;
    cfg.ea_stage2.iterations = 3;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.eval_clouds = 20;
    cfg.predictor = PredictorConfig {
        train_samples: 80,
        val_samples: 40,
        epochs: 8,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 1,
    };
    cfg
}

#[test]
fn search_works_on_every_edge_device() {
    for persona in hgnas::device::PersonaRegistry::builtin().edge_targets() {
        let device = persona.base_kind();
        let outcome = Hgnas::new(TaskConfig::tiny(8), tiny_config(device)).run();
        assert!(
            outcome.best.latency_ms < outcome.constraint_ms,
            "{device}: found model violates the constraint"
        );
        assert!(outcome.best.score.is_finite(), "{device}");
        assert!(!outcome.history.is_empty(), "{device}");
    }
}

#[test]
fn found_architecture_trains_standalone_and_beats_chance() {
    let task = TaskConfig::tiny(9);
    let outcome = Hgnas::new(task.clone(), tiny_config(DeviceKind::Rtx3080)).run();
    let ds = SynthNet40::generate(&task.dataset);
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = GnnModel::new(
        &mut rng,
        outcome.best.architecture.clone(),
        &task.head_hidden,
    );
    fit(&mut model, &ds.train, &FitConfig::quick().with_epochs(10));
    let eval = evaluate(&model, &ds.test, ds.classes, 3);
    // 4 classes => chance is 0.25.
    assert!(eval.overall > 0.3, "OA {}", eval.overall);
    assert!(model.size_mb() > 0.0);
}

#[test]
fn searched_fast_model_is_faster_than_dgcnn_on_target() {
    let task = TaskConfig::tiny(10);
    let mut cfg = tiny_config(DeviceKind::RaspberryPi3B);
    cfg.beta = 1.5; // Fast flavour.
    let outcome = Hgnas::new(task.clone(), cfg).run();
    let profile = DeviceKind::RaspberryPi3B.profile();
    let dgcnn_ms = profile
        .execute(&lower_edgeconv(&task.reference_dgcnn(), task.points()))
        .latency_ms;
    let found_ms = profile
        .execute(
            &outcome
                .best
                .architecture
                .lower(task.points(), &task.head_hidden),
        )
        .latency_ms;
    assert!(
        found_ms < dgcnn_ms,
        "found {found_ms:.1} ms !< DGCNN {dgcnn_ms:.1} ms"
    );
}

#[test]
fn measured_mode_search_also_satisfies_constraint() {
    let mut cfg = tiny_config(DeviceKind::I78700K);
    cfg.latency_mode = LatencyMode::Measured;
    let outcome = Hgnas::new(TaskConfig::tiny(11), cfg).run();
    assert!(outcome.predictor_stats.is_none());
    // Measured mode spends far more simulated time per query.
    assert!(outcome.search_hours > 0.0);
    assert!(outcome.best.latency_ms < outcome.constraint_ms);
}

#[test]
fn one_stage_strategy_completes_but_costs_more_per_candidate() {
    let task = TaskConfig::tiny(12);
    let mut multi = tiny_config(DeviceKind::Rtx3080);
    // Enough Stage-2 evaluations that the shared supernet amortises; with a
    // handful of evals the one-time pre-training dominates both strategies.
    multi.ea_stage2.population = 4;
    multi.ea_stage2.iterations = 8;
    // Disable the latency gate so every one-stage candidate pays its own
    // supernet training (constraint-failing candidates skip it).
    multi.constraint_ms = Some(f64::MAX);
    let mut one = multi.clone();
    one.strategy = Strategy::OneStage;
    let multi_out = Hgnas::new(task.clone(), multi).run();
    let one_out = Hgnas::new(task, one).run();
    let per_eval_multi = multi_out.search_hours / multi_out.history.len().max(1) as f64;
    let per_eval_one = one_out.search_hours / one_out.history.len().max(1) as f64;
    assert!(
        per_eval_one > per_eval_multi,
        "one-stage {per_eval_one} !> multi {per_eval_multi} (per-candidate hours)"
    );
}

#[test]
fn search_is_deterministic_given_seeds() {
    let a = Hgnas::new(TaskConfig::tiny(13), tiny_config(DeviceKind::JetsonTx2)).run();
    let b = Hgnas::new(TaskConfig::tiny(13), tiny_config(DeviceKind::JetsonTx2)).run();
    assert_eq!(a.best.genome, b.best.genome);
    assert_eq!(a.best.architecture, b.best.architecture);
    assert_eq!(a.best.score, b.best.score);
}

#[test]
fn merge_pass_preserves_found_model_output_dim() {
    let outcome = Hgnas::new(TaskConfig::tiny(14), tiny_config(DeviceKind::Rtx3080)).run();
    let arch = &outcome.best.architecture;
    let merged = merge_adjacent_samples(arch);
    assert_eq!(merged.out_dim(3), arch.out_dim(3));
    assert!(merged.len() <= arch.len());
}
